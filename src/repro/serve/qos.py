"""Per-tenant QoS: weighted fair queueing layered on EDF admission.

Under overload, a plain EDF queue is tenant-blind: one tenant spraying
tight-deadline requests starves everyone else.  The fleet's replicas
therefore run a :class:`WeightedFairQueue` — an
:class:`~repro.serve.queue.AdmissionQueue` whose *batch extraction*
picks which tenant to serve by weighted fair queueing and only then
applies EDF within that tenant:

* every tenant accrues *normalized service* — field elements
  dispatched divided by its weight (elements, ``batch * 2**log_size``,
  are the honest currency: one 2^20 transform is not one 2^8
  transform);
* :meth:`take_batch` serves the queued tenant with the least
  normalized service (ties break on tenant name, so extraction is a
  pure function of queue contents and service history);
* within the chosen tenant the head is the EDF-most-urgent request,
  and only *that tenant's* shape-compatible requests ride the batch —
  a dispatch is one tenant's service, so its charge is unambiguous;
* a tenant first seen mid-run starts at the current service floor
  (the minimum among active tenants), not at zero — late arrival must
  not buy a monopoly over the backlog.

With a single tenant queued the behavior collapses to exactly the base
EDF queue, which is why the single-server :class:`ProofServer` path is
byte-identical whether or not this class is used.  Everything is
deterministic; there is no randomized scheduling anywhere.
"""

from __future__ import annotations

from repro.errors import ServeError
from repro.serve.queue import AdmissionQueue
from repro.serve.request import ProofRequest

__all__ = ["WeightedFairQueue"]


class WeightedFairQueue(AdmissionQueue):
    """A bounded EDF queue with weighted-fair tenant selection."""

    def __init__(self, capacity: int,
                 weights: dict[str, float] | None = None) -> None:
        super().__init__(capacity)
        weights = dict(weights) if weights else {}
        for tenant, weight in weights.items():
            if not isinstance(tenant, str) or not tenant:
                raise ServeError(
                    f"tenant weight key must be a non-empty string, "
                    f"got {tenant!r}")
            if not weight > 0:
                raise ServeError(
                    f"tenant {tenant!r}: weight must be > 0, "
                    f"got {weight}")
        self.weights = weights
        self._service: dict[str, float] = {}

    def weight(self, tenant_id: str) -> float:
        """A tenant's configured weight (1.0 when unlisted)."""
        return self.weights.get(tenant_id, 1.0)

    def normalized_service(self, tenant_id: str) -> float:
        """Service-per-weight a tenant has received so far."""
        floor = min(self._service.values()) if self._service else 0.0
        return self._service.get(tenant_id, floor)

    def _charge(self, tenant_id: str, elements: int) -> None:
        base = self.normalized_service(tenant_id)
        self._service[tenant_id] = \
            base + elements / self.weight(tenant_id)

    def next_tenant(self) -> str:
        """The queued tenant WFQ serves next (queue unchanged)."""
        if not self._items:
            raise ServeError("next_tenant on an empty queue")
        queued = sorted({r.tenant_id for r in self._items})
        return min(queued, key=lambda t: (self.normalized_service(t), t))

    def take_batch(self, max_requests: int,
                   batching: bool = True) -> list[ProofRequest]:
        """Remove and return the next dispatch group (one tenant's).

        The WFQ-least-served queued tenant is chosen first; its EDF
        head leads the group and up to ``max_requests - 1`` of *its*
        shape-compatible requests join.  The dispatched elements are
        charged to that tenant before returning.
        """
        if max_requests < 1:
            raise ServeError(
                f"max_requests must be >= 1, got {max_requests}")
        tenant = self.next_tenant()
        mine = [r for r in self._items if r.tenant_id == tenant]
        head = min(mine, key=ProofRequest.urgency_key)
        if not batching or max_requests == 1:
            group = [head]
        else:
            key = head.shape_key()
            compatible = sorted(
                (r for r in mine if r.shape_key() == key),
                key=ProofRequest.urgency_key)
            group = compatible[:max_requests]
        for request in group:
            self._items.remove(request)
        self._charge(tenant, sum(r.batch * r.n for r in group))
        return group
