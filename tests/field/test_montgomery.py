"""Tests for Montgomery-form arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.field import (
    BLS12_381_FR, GOLDILOCKS, TEST_FIELD_97, MontgomeryContext, PrimeField,
)


@pytest.fixture(params=[TEST_FIELD_97, GOLDILOCKS, BLS12_381_FR],
                ids=lambda f: f.name)
def ctx(request):
    return MontgomeryContext(request.param)


class TestContext:
    def test_limb_count_minimal(self):
        assert MontgomeryContext(TEST_FIELD_97).limbs == 1
        assert MontgomeryContext(GOLDILOCKS).limbs == 1
        assert MontgomeryContext(BLS12_381_FR).limbs == 4

    def test_explicit_limbs(self):
        ctx = MontgomeryContext(TEST_FIELD_97, limbs=2)
        assert ctx.r == 1 << 128
        assert ctx.from_mont(ctx.to_mont(42)) == 42

    def test_too_few_limbs_rejected(self):
        with pytest.raises(FieldError, match="limbs"):
            MontgomeryContext(BLS12_381_FR, limbs=2)

    def test_n_prime_identity(self, ctx):
        """n_prime satisfies p * n_prime == -1 mod R."""
        p = ctx.field.modulus
        assert p * ctx.n_prime % ctx.r == ctx.r - 1

    def test_one_is_r_mod_p(self, ctx):
        assert ctx.one == ctx.r % ctx.field.modulus
        assert ctx.from_mont(ctx.one) == 1

    def test_mul_word_ops_positive(self, ctx):
        assert ctx.mul_word_ops() == (ctx.limbs * ctx.limbs
                                      + ctx.limbs * (ctx.limbs + 1))


class TestConversionAndOps:
    def test_roundtrip(self, ctx, rng):
        p = ctx.field.modulus
        for _ in range(20):
            a = rng.randrange(p)
            assert ctx.from_mont(ctx.to_mont(a)) == a

    def test_mont_mul_matches_plain(self, ctx, rng):
        p = ctx.field.modulus
        for _ in range(20):
            a, b = rng.randrange(p), rng.randrange(p)
            result = ctx.from_mont(
                ctx.mont_mul(ctx.to_mont(a), ctx.to_mont(b)))
            assert result == a * b % p

    def test_add_sub_match_plain(self, ctx, rng):
        p = ctx.field.modulus
        for _ in range(20):
            a, b = rng.randrange(p), rng.randrange(p)
            am, bm = ctx.to_mont(a), ctx.to_mont(b)
            assert ctx.from_mont(ctx.mont_add(am, bm)) == (a + b) % p
            assert ctx.from_mont(ctx.mont_sub(am, bm)) == (a - b) % p

    def test_redc_wordwise_matches(self, ctx, rng):
        p = ctx.field.modulus
        for _ in range(20):
            t = rng.randrange(p * ctx.r)
            assert ctx.redc(t) == ctx.redc_wordwise(t)

    def test_mont_pow(self, ctx, rng):
        p = ctx.field.modulus
        a = rng.randrange(1, p)
        am = ctx.to_mont(a)
        assert ctx.from_mont(ctx.mont_pow(am, 13)) == pow(a, 13, p)
        assert ctx.mont_pow(am, 0) == ctx.one

    def test_mont_pow_negative_rejected(self, ctx):
        with pytest.raises(FieldError, match="non-negative"):
            ctx.mont_pow(ctx.one, -1)

    def test_mont_inv(self, ctx, rng):
        p = ctx.field.modulus
        a = rng.randrange(1, p)
        am = ctx.to_mont(a)
        assert ctx.mont_mul(am, ctx.mont_inv(am)) == ctx.one

    def test_mont_inv_zero_rejected(self, ctx):
        with pytest.raises(FieldError, match="inverse"):
            ctx.mont_inv(0)


class TestMontgomeryElement:
    def test_operators(self):
        ctx = MontgomeryContext(TEST_FIELD_97)
        a, b = ctx.element(10), ctx.element(20)
        assert (a + b).canonical == 30
        assert (a - b).canonical == 87
        assert (a * b).canonical == 200 % 97
        assert (a ** 3).canonical == 1000 % 97
        assert (a * a.inverse()).canonical == 1

    def test_mixed_int(self):
        ctx = MontgomeryContext(TEST_FIELD_97)
        a = ctx.element(10)
        assert (a * 2).canonical == 20
        assert (a + 90).canonical == 3
        assert a == 10

    def test_cross_field_rejected(self):
        a = MontgomeryContext(TEST_FIELD_97).element(1)
        b = MontgomeryContext(GOLDILOCKS).element(1)
        with pytest.raises(FieldError, match="different fields"):
            a + b

    def test_repr_shows_canonical(self):
        a = MontgomeryContext(TEST_FIELD_97).element(42)
        assert "42" in repr(a)

    def test_hashable(self):
        ctx = MontgomeryContext(TEST_FIELD_97)
        assert len({ctx.element(5), ctx.element(5), ctx.element(6)}) == 2


@given(a=st.integers(min_value=0, max_value=GOLDILOCKS.modulus - 1),
       b=st.integers(min_value=0, max_value=GOLDILOCKS.modulus - 1))
def test_goldilocks_mont_mul_property(a, b):
    ctx = MontgomeryContext(GOLDILOCKS)
    p = GOLDILOCKS.modulus
    got = ctx.from_mont(ctx.mont_mul(ctx.to_mont(a), ctx.to_mont(b)))
    assert got == a * b % p
