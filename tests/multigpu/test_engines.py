"""Tests for the distributed NTT engines.

The two load-bearing guarantees:

1. **bit-exactness** — every engine, under every option set, produces
   exactly the single-node transform;
2. **accounting honesty** — the closed-form phase profiles the cost
   model prices match the functional simulator's counters byte-for-byte
   and multiply-for-multiply.
"""

import itertools
import random

import pytest

from repro.errors import PartitionError, SimulationError
from repro.field import BLS12_381_FR, GOLDILOCKS, TEST_FIELD_7681
from repro.hw import DGX_A100, PipelinedGroup
from repro.multigpu import (
    ALL_OFF, ALL_ON, BaselineFourStepEngine, BlockLayout, CyclicLayout,
    DistributedVector, SingleGpuEngine, SpectralLayout, UniNTTEngine,
    UniNTTOptions, distribute,
)
from repro.ntt import intt, ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681

ENGINES = [SingleGpuEngine, BaselineFourStepEngine, UniNTTEngine]


def run_forward(engine_cls, field, g, n, rng, **kwargs):
    cluster = SimCluster(field, g)
    engine = engine_cls(cluster, **kwargs)
    values = field.random_vector(n, rng)
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    return engine, values, out


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", ENGINES,
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("g,n", [(2, 64), (4, 64), (4, 256), (8, 512)])
    def test_forward_matches_reference(self, engine_cls, g, n, rng):
        engine, values, out = run_forward(engine_cls, F, g, n, rng)
        assert out.to_values() == ntt(F, values)
        assert isinstance(out.layout, type(engine.output_layout(n)))

    @pytest.mark.parametrize("engine_cls", ENGINES,
                             ids=lambda c: c.__name__)
    def test_roundtrip(self, engine_cls, rng):
        engine, values, out = run_forward(engine_cls, F, 4, 256, rng)
        back = engine.inverse(out)
        assert back.to_values() == values
        assert isinstance(back.layout, type(engine.input_layout(256)))

    @pytest.mark.parametrize("field", [GOLDILOCKS, BLS12_381_FR],
                             ids=lambda f: f.name)
    def test_production_fields(self, field, rng):
        for engine_cls in ENGINES:
            engine, values, out = run_forward(engine_cls, field, 4, 64, rng)
            assert out.to_values() == ntt(field, values)

    def test_inverse_accepts_external_spectrum(self, rng):
        """INTT of an independently-computed spectrum works."""
        n, g = 256, 4
        values = F.random_vector(n, rng)
        spectrum = ntt(F, values)
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(
            cluster, spectrum, SpectralLayout(n=n, gpu_count=g))
        assert engine.inverse(vec).to_values() == values

    def test_conservation_all_engines(self, rng):
        for engine_cls in ENGINES:
            engine, _, out = run_forward(engine_cls, F, 4, 64, rng)
            engine.inverse(out)
            engine.cluster.check_conservation()


class TestCollectiveCounts:
    def test_baseline_pays_three(self, rng):
        engine, _, _ = run_forward(BaselineFourStepEngine, F, 4, 256, rng)
        assert engine.cluster.trace.collective_count() == 3

    def test_unintt_pays_one(self, rng):
        engine, _, _ = run_forward(UniNTTEngine, F, 4, 256, rng)
        assert engine.cluster.trace.collective_count() == 1

    def test_unintt_materialized_pays_two(self, rng):
        engine, _, _ = run_forward(
            UniNTTEngine, F, 4, 256, rng,
            options=UniNTTOptions(keep_permuted_output=False))
        assert engine.cluster.trace.collective_count() == 2

    def test_roundtrip_collectives(self, rng):
        """NTT + INTT: baseline 6 exchanges, UniNTT 2."""
        for engine_cls, expected in ((BaselineFourStepEngine, 6),
                                     (UniNTTEngine, 2)):
            engine, _, out = run_forward(engine_cls, F, 4, 256, rng)
            engine.inverse(out)
            assert engine.cluster.trace.collective_count() == expected

    def test_unintt_moves_third_of_baseline_bytes(self, rng):
        results = {}
        for engine_cls in (BaselineFourStepEngine, UniNTTEngine):
            engine, _, _ = run_forward(engine_cls, F, 8, 512, rng)
            results[engine_cls] = engine.cluster.trace.bytes_by_level()[
                "multi-gpu"]
        assert results[BaselineFourStepEngine] == \
            3 * results[UniNTTEngine]


class TestOptionGrid:
    @pytest.mark.parametrize("fused,permuted,overlap,radix4",
                             itertools.product([True, False], repeat=4))
    def test_all_option_combinations_correct(self, fused, permuted,
                                             overlap, radix4, rng):
        options = UniNTTOptions(fused_twiddle=fused,
                                keep_permuted_output=permuted,
                                overlap=overlap, radix_fusion=radix4)
        engine, values, out = run_forward(UniNTTEngine, F, 4, 64, rng,
                                          options=options)
        assert out.to_values() == ntt(F, values)
        assert engine.inverse(out).to_values() == values


class TestAccountingHonesty:
    """Profiles priced by the cost model == counters the simulator saw."""

    def _flatten(self, profile):
        phases = []
        for step in profile:
            phases.extend(step.phases if isinstance(step, PipelinedGroup)
                          else [step])
        return phases

    @pytest.mark.parametrize("engine_cls,kwargs", [
        (SingleGpuEngine, {}),
        (SingleGpuEngine, {"naive": True}),
        (BaselineFourStepEngine, {}),
        (UniNTTEngine, {}),
        (UniNTTEngine, {"options": ALL_OFF}),
        (UniNTTEngine, {"options": UniNTTOptions(fused_twiddle=False)}),
        (UniNTTEngine,
         {"options": UniNTTOptions(keep_permuted_output=False)}),
        (UniNTTEngine, {"options": UniNTTOptions(radix_fusion=False)}),
    ], ids=lambda v: str(v))
    @pytest.mark.parametrize("inverse", [False, True],
                             ids=["forward", "inverse"])
    def test_profile_matches_simulator(self, engine_cls, kwargs, inverse,
                                       rng):
        n, g = 256, 4
        cluster = SimCluster(F, g)
        engine = engine_cls(cluster, **kwargs)
        values = F.random_vector(n, rng)
        if inverse:
            layout = engine.output_layout(n)
            vec = DistributedVector(cluster=cluster, layout=layout)
            cluster.load_shards(distribute(values, layout))
            engine.inverse(vec)
            profile = engine.inverse_profile(n)
        else:
            vec = DistributedVector.from_values(cluster, values,
                                                engine.input_layout(n))
            engine.forward(vec)
            profile = engine.forward_profile(n)
        phases = self._flatten(profile)

        expected_exchange = sum(p.exchange_bytes for p in phases)
        expected_muls = sum(p.field_muls for p in phases)
        expected_mem = sum(p.mem_bytes for p in phases)

        if engine_cls is SingleGpuEngine:
            # Work concentrates on the root; counters are root-centric.
            root = cluster.gpus[0].counters
            assert root.field_muls == expected_muls
            assert root.mem_traffic_bytes == expected_mem
            total_comm = sum(gpu.counters.bytes_sent
                             for gpu in cluster.gpus)
            assert total_comm == expected_exchange
        else:
            for gpu in cluster.gpus:
                assert gpu.counters.bytes_sent == expected_exchange
                assert gpu.counters.field_muls == expected_muls
                assert gpu.counters.mem_traffic_bytes == expected_mem


class TestEstimates:
    def test_engine_ordering_at_scale(self):
        n = 1 << 24
        cluster = SimCluster(BLS12_381_FR, 8)
        t_single = SingleGpuEngine(cluster).estimate(DGX_A100, n).total_s
        t_base = BaselineFourStepEngine(cluster).estimate(
            DGX_A100, n).total_s
        t_uni = UniNTTEngine(cluster).estimate(DGX_A100, n).total_s
        assert t_uni < t_base < t_single

    def test_each_optimization_helps_or_is_neutral(self):
        n = 1 << 24
        cluster = SimCluster(BLS12_381_FR, 8)
        t_on = UniNTTEngine(cluster, options=ALL_ON).estimate(
            DGX_A100, n).total_s
        for name in ("fused_twiddle", "keep_permuted_output", "overlap",
                     "radix_fusion"):
            t_off = UniNTTEngine(
                cluster, options=ALL_ON.without(name)).estimate(
                DGX_A100, n).total_s
            assert t_off >= t_on, name

    def test_all_off_still_beats_baseline_structure(self):
        """Even unoptimized, the one-exchange decomposition wins the
        three-transpose baseline at communication-bound scale."""
        n = 1 << 26
        cluster = SimCluster(BLS12_381_FR, 8)
        from repro.hw import A100_PCIE_NODE
        t_off = UniNTTEngine(cluster, options=ALL_OFF).estimate(
            A100_PCIE_NODE, n).total_s
        t_base = BaselineFourStepEngine(cluster).estimate(
            A100_PCIE_NODE, n).total_s
        assert t_off < t_base

    def test_inverse_estimate_close_to_forward(self):
        n = 1 << 20
        cluster = SimCluster(BLS12_381_FR, 8)
        engine = UniNTTEngine(cluster)
        fwd = engine.estimate(DGX_A100, n).total_s
        inv = engine.estimate(DGX_A100, n, inverse=True).total_s
        assert inv == pytest.approx(fwd, rel=0.15)


class TestValidation:
    def test_wrong_input_layout_rejected(self, rng):
        n, g = 64, 4
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(
            cluster, F.random_vector(n, rng), BlockLayout(n=n, gpu_count=g))
        with pytest.raises(PartitionError, match="expects"):
            engine.forward(vec)

    def test_unintt_needs_square(self, rng):
        cluster = SimCluster(F, 8)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(
            cluster, F.random_vector(32, rng),
            CyclicLayout(n=32, gpu_count=8))
        with pytest.raises(PartitionError, match="G\\^2"):
            engine.forward(vec)

    def test_baseline_factor_requirement(self):
        cluster = SimCluster(F, 8)
        engine = BaselineFourStepEngine(cluster)
        with pytest.raises(PartitionError, match="divisible"):
            engine.forward_profile(32)  # 32 = 4 x 8: rows=4 < 8 GPUs

    def test_bad_tile_rejected(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(SimulationError, match="tile"):
            UniNTTEngine(cluster, tile=3)

    def test_layout_cluster_mismatch(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(PartitionError):
            DistributedVector(cluster=cluster,
                              layout=BlockLayout(n=16, gpu_count=4))


class TestSpectralPipeline:
    def test_distributed_convolution_in_permuted_layout(self, rng):
        """The overhead-free pipeline: NTT -> pointwise (in spectral
        layout, no transpose!) -> INTT computes a cyclic convolution."""
        from repro.ntt import naive_cyclic_convolution

        n, g = 256, 4
        a = F.random_vector(n, rng)
        b = F.random_vector(n, rng)
        p = F.modulus

        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        layout = engine.input_layout(n)

        vec_a = DistributedVector.from_values(cluster, a, layout)
        spec_a = engine.forward(vec_a)
        shards_a = cluster.peek_shards()

        vec_b = DistributedVector.from_values(cluster, b, layout)
        spec_b = engine.forward(vec_b)

        # Pointwise multiply shard-by-shard: layout-agnostic, no comm.
        for gpu, shard_a in zip(cluster.gpus, shards_a):
            gpu.shard = [x * y % p for x, y in zip(shard_a, gpu.shard)]

        product = engine.inverse(
            DistributedVector(cluster=cluster, layout=spec_b.layout))
        assert product.to_values() == naive_cyclic_convolution(F, a, b)
        # The whole pipeline used exactly 3 collectives (2 fwd + 1 inv).
        assert cluster.trace.collective_count() == 3


class TestDistributedCoset:
    def test_coset_forward_matches_reference(self, rng):
        from repro.ntt import coset_ntt

        n, g = 256, 4
        x = F.random_vector(n, rng)
        shift = F.multiplicative_generator
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, x,
                                            engine.input_layout(n))
        out = engine.forward(vec, coset_shift=shift)
        assert out.to_values() == coset_ntt(F, x, shift)
        # still exactly one collective: the scaling fused locally.
        assert cluster.trace.collective_count() == 1

    def test_coset_roundtrip(self, rng):
        n, g = 64, 4
        x = F.random_vector(n, rng)
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, x,
                                            engine.input_layout(n))
        out = engine.forward(vec, coset_shift=42)
        back = engine.inverse(out, coset_shift=42)
        assert back.to_values() == x

    def test_zero_shift_rejected(self, rng):
        n, g = 64, 4
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster,
                                            F.random_vector(n, rng),
                                            engine.input_layout(n))
        with pytest.raises(PartitionError, match="non-zero"):
            engine.forward(vec, coset_shift=0)

    def test_fused_coset_adds_no_memory_traffic(self, rng):
        """With fusion on, the coset scaling is multiplications only."""
        n, g = 256, 4
        x = F.random_vector(n, rng)
        mem = {}
        for shift in (None, 5):
            cluster = SimCluster(F, g)
            engine = UniNTTEngine(cluster)
            vec = DistributedVector.from_values(cluster, x,
                                                engine.input_layout(n))
            engine.forward(vec, coset_shift=shift)
            mem[shift] = cluster.gpus[0].counters.mem_traffic_bytes
        assert mem[5] == mem[None]

    def test_negacyclic_via_coset_shift(self, rng):
        """A psi-shift coset transform is the negacyclic NTT — the
        distributed engine supports it out of the box."""
        from repro.ntt import negacyclic_ntt, negacyclic_shift

        n, g = 256, 4
        x = F.random_vector(n, rng)
        psi = negacyclic_shift(F, n)
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, x,
                                            engine.input_layout(n))
        out = engine.forward(vec, coset_shift=psi)
        assert out.to_values() == negacyclic_ntt(F, x)


class TestVectorizedPath:
    def test_bit_identical_to_scalar(self, rng):
        n, g = 512, 4
        x = GOLDILOCKS.random_vector(n, rng)
        results = []
        for flag in (False, True):
            cluster = SimCluster(GOLDILOCKS, g)
            engine = UniNTTEngine(cluster, vectorized=flag)
            vec = DistributedVector.from_values(cluster, x,
                                                engine.input_layout(n))
            out = engine.forward(vec)
            results.append(out.to_values())
            assert engine.inverse(out).to_values() == x
        assert results[0] == results[1] == ntt(GOLDILOCKS, x)

    def test_counters_unchanged_by_vectorization(self, rng):
        """Vectorization is an implementation detail: the model's
        charges (the *algorithm's* work) are identical."""
        n, g = 256, 4
        x = GOLDILOCKS.random_vector(n, rng)
        counters = []
        for flag in (False, True):
            cluster = SimCluster(GOLDILOCKS, g)
            engine = UniNTTEngine(cluster, vectorized=flag)
            vec = DistributedVector.from_values(cluster, x,
                                                engine.input_layout(n))
            engine.forward(vec)
            counters.append(cluster.gpus[0].counters.snapshot())
        assert counters[0] == counters[1]

    def test_requires_goldilocks(self):
        with pytest.raises(PartitionError, match="Goldilocks"):
            UniNTTEngine(SimCluster(F, 4), vectorized=True)

    def test_coset_shift_with_vectorized(self, rng):
        from repro.ntt import coset_ntt

        n, g = 256, 4
        x = GOLDILOCKS.random_vector(n, rng)
        cluster = SimCluster(GOLDILOCKS, g)
        engine = UniNTTEngine(cluster, vectorized=True)
        vec = DistributedVector.from_values(cluster, x,
                                            engine.input_layout(n))
        out = engine.forward(vec, coset_shift=7)
        assert out.to_values() == coset_ntt(GOLDILOCKS, x, 7)
