"""Compatibility shim: the clock moved to :mod:`repro.runtime.clock`.

The serving layer and the functional simulator share one discrete-
event runtime now (see :mod:`repro.runtime`); the clock that used to
live here is that runtime's foundation.  Existing imports of
``repro.serve.clock.VirtualClock`` keep working through this module.
"""

from __future__ import annotations

from repro.runtime.clock import VirtualClock

__all__ = ["VirtualClock"]
