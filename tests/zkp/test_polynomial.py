"""Tests for dense polynomial algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NTTError, ReproError
from repro.field import GOLDILOCKS, TEST_FIELD_7681
from repro.zkp import EvaluationDomain, Polynomial

F = TEST_FIELD_7681


def poly(*coeffs):
    return Polynomial(F, list(coeffs))


class TestConstruction:
    def test_normalization(self):
        assert poly(1, 2, 0, 0).coeffs == (1, 2)
        assert poly(0, 0).is_zero()
        assert poly().degree == -1

    def test_reduction(self):
        assert poly(F.modulus + 3).coeffs == (3,)

    def test_monomial(self):
        m = Polynomial.monomial(F, 3, 5)
        assert m.coeffs == (0, 0, 0, 5)
        with pytest.raises(ReproError):
            Polynomial.monomial(F, -1)

    def test_vanishing(self):
        z = Polynomial.vanishing(F, 4)
        assert z.degree == 4
        domain = EvaluationDomain(F, 4)
        for e in domain.elements():
            assert z.evaluate(e) == 0

    def test_constants(self):
        assert Polynomial.zero(F).is_zero()
        assert Polynomial.one(F).coeffs == (1,)


class TestRingOps:
    def test_add_sub(self):
        a, b = poly(1, 2, 3), poly(5, 6)
        assert (a + b).coeffs == (6, 8, 3)
        assert (a - b).coeffs == (7677, 7677, 3)
        assert (a - a).is_zero()

    def test_neg(self):
        assert (-poly(1, 2)).coeffs == (7680, 7679)
        assert (-Polynomial.zero(F)).is_zero()

    def test_mul_by_hand(self):
        assert (poly(1, 1) * poly(1, 1)).coeffs == (1, 2, 1)

    def test_mul_scalar(self):
        assert (poly(1, 2) * 3).coeffs == (3, 6)
        assert (3 * poly(1, 2)).coeffs == (3, 6)
        assert poly(1, 2).scale(0).is_zero()

    def test_mul_zero(self):
        assert (poly(1, 2) * Polynomial.zero(F)).is_zero()

    def test_large_mul_uses_ntt_and_matches_schoolbook(self, rng):
        a = Polynomial(F, F.random_vector(70, rng))
        b = Polynomial(F, F.random_vector(70, rng))
        product = a * b
        assert product.degree <= a.degree + b.degree
        assert product == a._schoolbook_mul(b)

    def test_shift(self):
        assert poly(1, 2).shift(2).coeffs == (0, 0, 1, 2)
        assert Polynomial.zero(F).shift(3).is_zero()
        with pytest.raises(ReproError):
            poly(1).shift(-1)

    def test_cross_field_rejected(self):
        with pytest.raises(ReproError, match="different fields"):
            poly(1) + Polynomial(GOLDILOCKS, [1])


class TestDivision:
    def test_divmod_identity(self, rng):
        a = Polynomial(F, F.random_vector(20, rng))
        b = Polynomial(F, F.random_vector(7, rng) or [1])
        if b.is_zero():
            b = Polynomial.one(F)
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree or r.is_zero()

    def test_exact_division(self):
        a = poly(1, 2, 1)   # (1+x)^2
        b = poly(1, 1)
        q, r = a.divmod(b)
        assert q == b and r.is_zero()
        assert a // b == b
        assert (a % b).is_zero()

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly(1, 2).divmod(Polynomial.zero(F))

    def test_divide_by_vanishing_exact(self, rng):
        h = Polynomial(F, F.random_vector(5, rng))
        z = Polynomial.vanishing(F, 8)
        assert (h * z).divide_by_vanishing(8) == h

    def test_divide_by_vanishing_inexact_raises(self):
        with pytest.raises(NTTError, match="not divisible"):
            poly(1, 1).divide_by_vanishing(4)


class TestEvaluation:
    def test_horner(self):
        assert poly(3, 0, 2).evaluate(5) == (3 + 2 * 25) % F.modulus
        assert Polynomial.zero(F).evaluate(10) == 0

    def test_evaluate_over_domain(self, rng):
        domain = EvaluationDomain(F, 16)
        a = Polynomial(F, F.random_vector(10, rng))
        evals = a.evaluate_over(domain)
        for i in (0, 3, 15):
            assert evals[i] == a.evaluate(domain.element(i))

    def test_interpolate_roundtrip(self, rng):
        domain = EvaluationDomain(F, 16)
        a = Polynomial(F, F.random_vector(16, rng))
        assert Polynomial.interpolate(domain, a.evaluate_over(domain)) == a

    def test_coset_evaluation(self, rng):
        domain = EvaluationDomain(F, 8)
        shift = domain.default_coset_shift()
        a = Polynomial(F, F.random_vector(8, rng))
        evals = a.evaluate_over_coset(domain, shift)
        for i, point in enumerate(domain.coset_elements(shift)):
            assert evals[i] == a.evaluate(point)

    def test_degree_too_high_rejected(self):
        domain = EvaluationDomain(F, 4)
        big = Polynomial.monomial(F, 4)
        with pytest.raises(NTTError, match="fit"):
            big.evaluate_over(domain)
        with pytest.raises(NTTError, match="fit"):
            big.evaluate_over_coset(domain, 3)


class TestProtocols:
    def test_equality_and_hash(self):
        assert poly(1, 2) == poly(1, 2, 0)
        assert poly(1) != poly(2)
        assert len({poly(1, 2), poly(1, 2)}) == 1

    def test_repr(self):
        assert "degree=1" in repr(poly(1, 2))
        assert "0" in repr(Polynomial.zero(F))


coeff_lists = st.lists(st.integers(min_value=0, max_value=7680),
                       min_size=0, max_size=10)


@given(a=coeff_lists, b=coeff_lists, c=coeff_lists)
def test_ring_axioms(a, b, c):
    pa, pb, pc = Polynomial(F, a), Polynomial(F, b), Polynomial(F, c)
    assert pa + pb == pb + pa
    assert pa * pb == pb * pa
    assert (pa + pb) * pc == pa * pc + pb * pc
    assert pa + Polynomial.zero(F) == pa
    assert pa * Polynomial.one(F) == pa


@given(a=coeff_lists, point=st.integers(min_value=0, max_value=7680))
def test_evaluation_is_ring_hom(a, point):
    pa = Polynomial(F, a)
    squared = pa * pa
    assert squared.evaluate(point) == \
        pa.evaluate(point) ** 2 % F.modulus
