"""Tests for Bluestein arbitrary-length transforms."""

import pytest

from repro.errors import FieldError, NTTError
from repro.field import BABYBEAR, GOLDILOCKS
from repro.ntt import bluestein_intt, bluestein_ntt, dft, intt, ntt

F = GOLDILOCKS


class TestGeneralRoots:
    def test_exact_order(self):
        for order in (3, 5, 6, 15, 17, 60):
            root = F.root_of_unity_general(order)
            assert pow(root, order, F.modulus) == 1
            for d in range(1, order):
                if order % d == 0 and d != order:
                    assert pow(root, d, F.modulus) != 1

    def test_non_divisor_rejected(self):
        with pytest.raises(FieldError, match="does not divide"):
            F.root_of_unity_general(7)  # 7 does not divide p-1

    def test_order_validation(self):
        with pytest.raises(FieldError, match="positive"):
            F.root_of_unity_general(0)

    def test_power_of_two_consistent(self):
        assert F.root_of_unity_general(16) == F.root_of_unity(16)


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 10, 12, 15, 17, 20, 48,
                                   60])
    def test_matches_reference(self, n, rng):
        x = F.random_vector(n, rng)
        root = F.root_of_unity_general(n)
        assert bluestein_ntt(F, x) == dft(F, x, root=root)

    @pytest.mark.parametrize("n", [3, 5, 12, 17, 60])
    def test_roundtrip(self, n, rng):
        x = F.random_vector(n, rng)
        assert bluestein_intt(F, bluestein_ntt(F, x)) == x

    def test_power_of_two_agrees_with_radix2(self, rng):
        x = F.random_vector(64, rng)
        assert bluestein_ntt(F, x) == ntt(F, x)
        assert bluestein_intt(F, ntt(F, x)) == intt(F, ntt(F, x))

    def test_empty_rejected(self):
        with pytest.raises(NTTError, match="empty"):
            bluestein_ntt(F, [])

    def test_unsupported_length_raises(self):
        # 2*7 = 14 does not divide p-1.
        with pytest.raises(FieldError, match="does not divide"):
            bluestein_ntt(F, [1] * 7)

    def test_babybear_lengths(self, rng):
        # BabyBear p-1 = 2^27 * 3 * 5: length 15 works.
        x = BABYBEAR.random_vector(15, rng)
        got = bluestein_ntt(BABYBEAR, x)
        assert got == dft(BABYBEAR, x,
                          root=BABYBEAR.root_of_unity_general(15))
        assert bluestein_intt(BABYBEAR, got) == x

    def test_linearity(self, rng):
        n = 12
        p = F.modulus
        x = F.random_vector(n, rng)
        y = F.random_vector(n, rng)
        lhs = bluestein_ntt(F, [(a + b) % p for a, b in zip(x, y)])
        rhs = [(a + b) % p for a, b in zip(bluestein_ntt(F, x),
                                           bluestein_ntt(F, y))]
        assert lhs == rhs
