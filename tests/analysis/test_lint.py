"""Repo lint: clean on src/repro, and each rule fires on bad input."""

import textwrap

from repro.analysis.lint import default_root, lint_file, lint_paths


def checks_of(findings):
    return {finding.check for finding in findings}


def write_module(tmp_path, package, name, source):
    directory = tmp_path / package if package else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(textwrap.dedent(source))
    return str(path)


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        assert lint_paths() == []

    def test_default_root_is_the_package(self):
        assert default_root().endswith("repro")


class TestRawMod:
    def test_comprehension_in_hot_package(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "bad.py", """\
            def twiddle(shard, tw, p):
                return [a * b % p for a, b in zip(shard, tw)]
            """)
        findings = lint_file(path, root=str(tmp_path))
        assert checks_of(findings) == {"lint.raw-mod"}

    def test_lambda_combiner(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "bad.py", """\
            def pointwise(p):
                return lambda a, b: (a + b) % p
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.raw-mod"}

    def test_element_store_loop(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "bad.py", """\
            def scale(shard, s, p):
                for i in range(len(shard)):
                    shard[i] = shard[i] * s % p
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.raw-mod"}

    def test_scalar_mod_is_fine(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "ok.py", """\
            def index(i, g):
                return i % g
            """)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_same_code_outside_hot_packages_is_fine(self, tmp_path):
        path = write_module(tmp_path, "field", "ok.py", """\
            def twiddle(shard, tw, p):
                return [a * b % p for a, b in zip(shard, tw)]
            """)
        assert lint_file(path, root=str(tmp_path)) == []


class TestNondeterminism:
    def test_random_call_in_sim(self, tmp_path):
        path = write_module(tmp_path, "sim", "bad.py", """\
            import random

            def jitter():
                return random.random()
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.nondeterminism"}

    def test_time_call_in_multigpu(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "bad.py", """\
            import time

            def stamp():
                return time.time()
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.nondeterminism"}

    def test_seeded_random_is_allowed(self, tmp_path):
        path = write_module(tmp_path, "sim", "ok.py", """\
            import random

            def rng(seed):
                return random.Random(seed)
            """)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_random_outside_deterministic_packages(self, tmp_path):
        path = write_module(tmp_path, "bench", "ok.py", """\
            import random

            def pick():
                return random.random()
            """)
        assert lint_file(path, root=str(tmp_path)) == []


class TestMutableDefault:
    def test_list_default(self, tmp_path):
        path = write_module(tmp_path, "util", "bad.py", """\
            def collect(items=[]):
                return items
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.mutable-default"}

    def test_dict_constructor_default(self, tmp_path):
        path = write_module(tmp_path, "util", "bad.py", """\
            def collect(*, mapping=dict()):
                return mapping
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.mutable-default"}

    def test_none_default_is_fine(self, tmp_path):
        path = write_module(tmp_path, "util", "ok.py", """\
            def collect(items=None):
                return items or []
            """)
        assert lint_file(path, root=str(tmp_path)) == []


class TestTraceKind:
    def test_unregistered_literal_kind(self, tmp_path):
        path = write_module(tmp_path, "sim", "bad.py", """\
            from repro.sim.trace import TraceEvent

            def event():
                return TraceEvent(kind="teleport", level="gpu")
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.trace-kind"}

    def test_registered_kind_is_fine(self, tmp_path):
        path = write_module(tmp_path, "sim", "ok.py", """\
            from repro.sim.trace import TraceEvent

            def event():
                return TraceEvent(kind="all-to-all", level="multi-gpu")
            """)
        assert lint_file(path, root=str(tmp_path)) == []


class TestDriver:
    def test_syntax_error_is_a_finding(self, tmp_path):
        path = write_module(tmp_path, "", "broken.py", "def oops(:\n")
        findings = lint_file(path, root=str(tmp_path))
        assert len(findings) == 1
        assert "does not parse" in findings[0].message

    def test_lint_paths_recurses_and_sorts(self, tmp_path):
        write_module(tmp_path, "multigpu", "a.py", """\
            def f(p):
                return lambda a, b: a * b % p
            """)
        write_module(tmp_path, "sim", "b.py", """\
            import time

            def f():
                return time.time()
            """)
        findings = lint_paths([str(tmp_path)], root=str(tmp_path))
        # sim/ is both a deterministic and a simulated-time package, so
        # the time.time() call trips nondeterminism AND wall-clock.
        assert [f.check for f in findings] == [
            "lint.raw-mod", "lint.nondeterminism", "lint.wall-clock"]


class TestDictOrder:
    def test_loop_over_breaker_values_in_serve(self, tmp_path):
        path = write_module(tmp_path, "serve", "bad.py", """\
            def poll(self):
                for breaker in self._breakers.values():
                    breaker.poll(0.0)
            """)
        findings = lint_file(path, root=str(tmp_path))
        assert checks_of(findings) == {"lint.dict-order"}
        assert "sorted" in findings[0].message

    def test_sorted_wrap_is_fine(self, tmp_path):
        path = write_module(tmp_path, "serve", "ok.py", """\
            def poll(self):
                for key in sorted(self._breakers.keys()):
                    self._breakers[key].poll(0.0)
            """)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_comprehension_over_shard_map(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "bad.py", """\
            def totals(shard_map):
                return [len(shard) for shard in shard_map.values()]
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.dict-order"}

    def test_items_over_gpu_map(self, tmp_path):
        path = write_module(tmp_path, "sim", "bad.py", """\
            def dump(per_gpu):
                for gpu, shard in per_gpu.items():
                    print(gpu, shard)
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.dict-order"}

    def test_innocent_map_name_is_fine(self, tmp_path):
        path = write_module(tmp_path, "serve", "ok.py", """\
            def dump(options):
                for value in options.values():
                    print(value)
            """)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_same_code_outside_deterministic_packages(self, tmp_path):
        path = write_module(tmp_path, "bench", "ok.py", """\
            def dump(shard_map):
                for shard in shard_map.values():
                    print(shard)
            """)
        assert lint_file(path, root=str(tmp_path)) == []


class TestNondeterminismInServe:
    def test_time_call_in_serve(self, tmp_path):
        path = write_module(tmp_path, "serve", "bad.py", """\
            import time

            def now():
                return time.monotonic()
            """)
        # The overlap with lint.wall-clock is deliberate: the two
        # rules answer different questions (determinism vs simulated
        # time) and serve/ is in scope for both.
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.nondeterminism", "lint.wall-clock"}


class TestPowInverse:
    def test_fermat_inverse_in_ntt(self, tmp_path):
        path = write_module(tmp_path, "ntt", "bad.py", """\
            def invert_all(shard, p):
                return [pow(x, p - 2, p) for x in shard]
            """)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.pow-inverse"}

    def test_fermat_inverse_in_multigpu(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "bad.py", """\
            def unscale(x, n, p):
                return x * pow(n, p - 2, p)
            """)
        assert "lint.pow-inverse" in checks_of(
            lint_file(path, root=str(tmp_path)))

    def test_two_arg_pow_is_fine(self, tmp_path):
        path = write_module(tmp_path, "ntt", "ok.py", """\
            def square_tower(x, s):
                return pow(x, 2 ** s)
            """)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_non_inverse_exponent_is_fine(self, tmp_path):
        path = write_module(tmp_path, "ntt", "ok.py", """\
            def root_step(w, step, p):
                return pow(w, step, p)
            """)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_same_code_outside_bigfield_packages_is_fine(self, tmp_path):
        path = write_module(tmp_path, "field", "ok.py", """\
            def inv(x, p):
                return pow(x, p - 2, p)
            """)
        assert lint_file(path, root=str(tmp_path)) == []


class TestRawTransfers:
    SOURCE = """\
        from repro.multigpu.schedule import ShardTransfer

        def handmade():
            return ShardTransfer(src=0, dst=1, nbytes=8)
        """

    def test_hand_constructed_transfer_is_flagged(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "custom.py",
                            self.SOURCE)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.raw-transfers"}

    def test_flagged_anywhere_in_the_tree(self, tmp_path):
        path = write_module(tmp_path, "serve", "custom.py", self.SOURCE)
        assert checks_of(lint_file(path, root=str(tmp_path))) == {
            "lint.raw-transfers"}

    def test_schedule_builders_are_exempt(self, tmp_path):
        path = write_module(tmp_path, "multigpu", "schedule.py",
                            self.SOURCE)
        assert lint_file(path, root=str(tmp_path)) == []

    def test_pass_framework_is_exempt(self, tmp_path):
        for name in ("passes.py", "synth.py"):
            path = write_module(tmp_path, "analysis", name, self.SOURCE)
            assert lint_file(path, root=str(tmp_path)) == []


class TestWallClock:
    def test_time_time_in_runtime_package(self, tmp_path):
        path = write_module(tmp_path, "runtime", "bad.py", """\
            import time

            def stamp():
                return time.time()
            """)
        assert "lint.wall-clock" in checks_of(
            lint_file(path, root=str(tmp_path)))

    def test_ns_variants_and_clock_gettime(self, tmp_path):
        path = write_module(tmp_path, "sim", "bad.py", """\
            import time

            def stamps():
                return (time.perf_counter_ns(), time.monotonic_ns(),
                        time.clock_gettime(0))
            """)
        findings = [f for f in lint_file(path, root=str(tmp_path))
                    if f.check == "lint.wall-clock"]
        assert len(findings) == 3

    def test_from_import_is_flagged_at_the_import_and_the_call(
            self, tmp_path):
        path = write_module(tmp_path, "serve", "bad.py", """\
            from time import perf_counter as tick

            def stamp():
                return tick()
            """)
        findings = [f for f in lint_file(path, root=str(tmp_path))
                    if f.check == "lint.wall-clock"]
        assert len(findings) == 2

    def test_datetime_now_is_flagged(self, tmp_path):
        path = write_module(tmp_path, "serve", "bad.py", """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """)
        assert "lint.wall-clock" in checks_of(
            lint_file(path, root=str(tmp_path)))

    def test_sleep_is_not_a_clock_read(self, tmp_path):
        # time.sleep stalls but does not *read* the clock; the
        # nondeterminism rule covers it in serve, wall-clock does not.
        path = write_module(tmp_path, "runtime", "ok.py", """\
            import time

            def nap():
                time.sleep(0.1)
            """)
        assert "lint.wall-clock" not in checks_of(
            lint_file(path, root=str(tmp_path)))

    def test_bench_package_is_exempt(self, tmp_path):
        # Benchmarks measure real elapsed time on purpose.
        path = write_module(tmp_path, "bench", "timer.py", """\
            import time

            def measure():
                return time.perf_counter()
            """)
        assert "lint.wall-clock" not in checks_of(
            lint_file(path, root=str(tmp_path)))
