"""A simulated multi-GPU cluster with counted collectives.

The cluster owns the devices and implements the communication
primitives the distributed NTT engines use:

* :meth:`SimCluster.all_to_all` — personalized all-to-all (the transpose
  collective); the workhorse of both the baseline and UniNTT engines;
* :meth:`SimCluster.pairwise_exchange` — disjoint-pair exchange (one
  butterfly stage of a cross-GPU NTT);
* :meth:`SimCluster.gather_to` / :meth:`SimCluster.scatter_from` — used
  by the single-GPU engine (and by the end-to-end pipeline when a stage
  insists on one device).

Every primitive updates per-GPU counters and appends a trace event.
Reading data *without* charging (for verification) goes through
:meth:`SimCluster.peek_shards`.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.field.prime_field import PrimeField
from repro.hw.cost import field_limbs
from repro.sim.device import SimGPU
from repro.sim.trace import Trace, TraceEvent

__all__ = ["SimCluster"]


class SimCluster:
    """``gpu_count`` simulated GPUs over one interconnect fabric.

    ``node_size`` optionally groups GPUs into nodes of that many
    devices; collectives then attribute bytes that cross a node
    boundary to the "multi-node" trace level and bytes that stay inside
    a node to "multi-gpu", so hierarchy-aware engines can be audited
    per fabric.
    """

    def __init__(self, field: PrimeField, gpu_count: int,
                 node_size: int | None = None):
        if gpu_count < 1 or gpu_count & (gpu_count - 1):
            raise SimulationError(
                f"gpu_count must be a power of two, got {gpu_count}")
        if node_size is not None:
            if (node_size < 1 or node_size & (node_size - 1)
                    or gpu_count % node_size):
                raise SimulationError(
                    f"node_size {node_size} must be a power of two "
                    f"dividing gpu_count {gpu_count}")
        self.field = field
        self.gpu_count = gpu_count
        self.node_size = node_size
        self.element_bytes = field_limbs(field) * 8
        self.gpus = [SimGPU(i, field) for i in range(gpu_count)]
        self.trace = Trace()

    @property
    def node_count(self) -> int:
        """Number of nodes (1 when node structure is not modeled)."""
        if self.node_size is None:
            return 1
        return self.gpu_count // self.node_size

    def node_of(self, gpu_id: int) -> int:
        """The node a GPU belongs to (0 when unstructured)."""
        if self.node_size is None:
            return 0
        return gpu_id // self.node_size

    def __repr__(self) -> str:
        return (f"SimCluster({self.gpu_count}x GPU, field={self.field.name}, "
                f"{len(self.trace)} events)")

    # -- raw data access -------------------------------------------------------

    def load_shards(self, shards: Sequence[Sequence[int]]) -> None:
        """Install one shard per GPU (host staging; not counted)."""
        if len(shards) != self.gpu_count:
            raise SimulationError(
                f"expected {self.gpu_count} shards, got {len(shards)}")
        for gpu, shard in zip(self.gpus, shards):
            gpu.load(list(shard))

    def peek_shards(self) -> list[list[int]]:
        """Copy every shard without touching any counter."""
        return [list(gpu.shard) for gpu in self.gpus]

    def reset_counters(self) -> None:
        """Zero all device counters and drop the trace."""
        for gpu in self.gpus:
            gpu.reset_counters()
        self.trace.clear()

    # -- collectives ----------------------------------------------------------

    def all_to_all(self, outboxes: Sequence[Sequence[Sequence[int]]],
                   detail: str = "") -> list[list[list[int]]]:
        """Personalized all-to-all.

        ``outboxes[src][dst]`` is the message (list of field values) GPU
        ``src`` sends to GPU ``dst``.  Returns ``inboxes`` with
        ``inboxes[dst][src]`` the received message.  Self-messages move
        no bytes.
        """
        g = self.gpu_count
        if len(outboxes) != g or any(len(row) != g for row in outboxes):
            raise SimulationError(
                f"all_to_all needs a {g}x{g} outbox matrix")
        eb = self.element_bytes
        inboxes: list[list[list[int]]] = [[[] for _ in range(g)]
                                          for _ in range(g)]
        intra_sent = [0] * g
        inter_sent = [0] * g
        for src in range(g):
            for dst in range(g):
                message = list(outboxes[src][dst])
                inboxes[dst][src] = message
                if src != dst:
                    nbytes = len(message) * eb
                    if self.node_of(src) == self.node_of(dst):
                        intra_sent[src] += nbytes
                    else:
                        inter_sent[src] += nbytes
                    self.gpus[dst].charge_receive(nbytes)
        for src in range(g):
            self.gpus[src].charge_send(intra_sent[src] + inter_sent[src])
        self.trace.record(TraceEvent(
            kind="all-to-all", level="multi-gpu",
            max_bytes_per_gpu=max(intra_sent), total_bytes=sum(intra_sent),
            detail=detail))
        if self.node_size is not None and sum(inter_sent):
            self.trace.record(TraceEvent(
                kind="all-to-all", level="multi-node",
                max_bytes_per_gpu=max(inter_sent),
                total_bytes=sum(inter_sent), detail=detail))
        return inboxes

    def pairwise_exchange(self, partner_of: Sequence[int],
                          payloads: Sequence[Sequence[int]],
                          detail: str = "") -> list[list[int]]:
        """Disjoint-pair exchange: GPU i sends its payload to its partner.

        ``partner_of`` must be an involution (``partner_of[partner_of[i]]
        == i``); a GPU that is its own partner moves nothing.  Returns
        the payload each GPU received.
        """
        g = self.gpu_count
        if len(partner_of) != g or len(payloads) != g:
            raise SimulationError("pairwise_exchange needs one partner and "
                                  "one payload per GPU")
        for i, j in enumerate(partner_of):
            if not 0 <= j < g or partner_of[j] != i:
                raise SimulationError(
                    f"partner map is not an involution at GPU {i}")
        eb = self.element_bytes
        received: list[list[int]] = [[] for _ in range(g)]
        intra = {"max": 0, "total": 0}
        inter = {"max": 0, "total": 0}
        for i, j in enumerate(partner_of):
            received[j] = list(payloads[i])
            if i != j:
                nbytes = len(payloads[i]) * eb
                self.gpus[i].charge_send(nbytes)
                self.gpus[j].charge_receive(nbytes)
                bucket = intra if self.node_of(i) == self.node_of(j) \
                    else inter
                bucket["max"] = max(bucket["max"], nbytes)
                bucket["total"] += nbytes
        self.trace.record(TraceEvent(
            kind="pairwise", level="multi-gpu",
            max_bytes_per_gpu=intra["max"], total_bytes=intra["total"],
            detail=detail))
        if self.node_size is not None and inter["total"]:
            self.trace.record(TraceEvent(
                kind="pairwise", level="multi-node",
                max_bytes_per_gpu=inter["max"], total_bytes=inter["total"],
                detail=detail))
        return received

    def gather_to(self, root: int, detail: str = "") -> list[list[int]]:
        """Collect every shard on GPU ``root``; returns the shard list."""
        if not 0 <= root < self.gpu_count:
            raise SimulationError(f"invalid root GPU {root}")
        eb = self.element_bytes
        shards = []
        total = 0
        max_sent = 0
        for gpu in self.gpus:
            shards.append(list(gpu.shard))
            if gpu.gpu_id != root:
                nbytes = len(gpu.shard) * eb
                gpu.charge_send(nbytes)
                self.gpus[root].charge_receive(nbytes)
                total += nbytes
                max_sent = max(max_sent, nbytes)
        self.trace.record(TraceEvent(
            kind="gather", level="multi-gpu",
            max_bytes_per_gpu=max_sent, total_bytes=total, detail=detail))
        return shards

    def scatter_from(self, root: int, shards: Sequence[Sequence[int]],
                     detail: str = "") -> None:
        """Distribute ``shards[i]`` to GPU ``i`` from GPU ``root``."""
        if len(shards) != self.gpu_count:
            raise SimulationError(
                f"expected {self.gpu_count} shards, got {len(shards)}")
        eb = self.element_bytes
        total = 0
        sent = 0
        for gpu, shard in zip(self.gpus, shards):
            gpu.load(list(shard))
            if gpu.gpu_id != root:
                nbytes = len(shard) * eb
                gpu.charge_receive(nbytes)
                sent += nbytes
        self.gpus[root].charge_send(sent)
        total = sent
        self.trace.record(TraceEvent(
            kind="scatter", level="multi-gpu",
            max_bytes_per_gpu=sent, total_bytes=total, detail=detail))

    # -- local accounting shared by engines ---------------------------------------

    def charge_local(self, field_muls_per_gpu: int, mem_bytes_per_gpu: int,
                     detail: str = "") -> None:
        """Charge an identical local kernel on every GPU."""
        for gpu in self.gpus:
            gpu.charge_compute(field_muls_per_gpu, mem_bytes_per_gpu)
        self.trace.record(TraceEvent(
            kind="local-compute", level="gpu",
            total_bytes=mem_bytes_per_gpu * self.gpu_count,
            max_bytes_per_gpu=mem_bytes_per_gpu,
            field_muls=field_muls_per_gpu * self.gpu_count, detail=detail))

    # -- invariants -----------------------------------------------------------

    def validate_shards(self) -> None:
        """Check every shard holds canonical field values.

        Engines run this at phase boundaries in paranoid tests; a
        corrupted element (bit flip, wrong-field write, stale buffer)
        fails fast with the device and index named.
        """
        from repro.field.vector import validate_vector

        for gpu in self.gpus:
            try:
                validate_vector(self.field, gpu.shard)
            except Exception as error:
                raise SimulationError(
                    f"GPU {gpu.gpu_id} shard invalid: {error}") from error

    def corrupt(self, gpu_id: int, local_index: int, value: int) -> int:
        """Deliberately overwrite one shard slot (fault injection).

        Returns the previous value so tests can restore it.
        """
        if not 0 <= gpu_id < self.gpu_count:
            raise SimulationError(f"invalid gpu_id {gpu_id}")
        shard = self.gpus[gpu_id].shard
        if not 0 <= local_index < len(shard):
            raise SimulationError(
                f"GPU {gpu_id}: local index {local_index} out of range")
        previous = shard[local_index]
        shard[local_index] = value
        return previous

    def check_conservation(self) -> None:
        """Total bytes sent must equal total bytes received."""
        sent = sum(g.counters.bytes_sent for g in self.gpus)
        received = sum(g.counters.bytes_received for g in self.gpus)
        if sent != received:
            raise SimulationError(
                f"conservation violated: sent {sent} != received {received}")
