"""Tests for the FRI low-degree test."""

import dataclasses

import pytest

from repro.errors import ProverError
from repro.field import BABYBEAR, GOLDILOCKS
from repro.zkp import (
    FriParameters, FriProver, FriVerifier, Transcript, low_degree_extend,
)

F = GOLDILOCKS


@pytest.fixture(scope="module")
def params():
    return FriParameters(field=F, degree_bound=64, blowup=4,
                         final_degree=4, query_count=8)


@pytest.fixture(scope="module")
def prover(params):
    return FriProver(params)


@pytest.fixture(scope="module")
def verifier(params):
    return FriVerifier(params)


class TestParameters:
    def test_derived_quantities(self, params):
        assert params.domain_size == 256
        assert params.round_count == 4  # 64 -> 32 -> 16 -> 8 -> 4

    def test_validation(self):
        with pytest.raises(ProverError, match="power of two"):
            FriParameters(field=F, degree_bound=48)
        with pytest.raises(ProverError, match="final_degree"):
            FriParameters(field=F, degree_bound=4, final_degree=8)
        with pytest.raises(ProverError, match="query_count"):
            FriParameters(field=F, degree_bound=8, query_count=0)


class TestLowDegreeExtension:
    def test_extends_evaluations(self, params, rng):
        coeffs = F.random_vector(10, rng)
        evals = low_degree_extend(F, coeffs, params)
        assert len(evals) == params.domain_size
        # Spot-check one point.
        shift = params.coset_shift()
        omega = F.root_of_unity(params.domain_size)
        x3 = shift * pow(omega, 3, F.modulus) % F.modulus
        direct = 0
        for c in reversed(coeffs):
            direct = (direct * x3 + c) % F.modulus
        assert evals[3] == direct

    def test_degree_bound_enforced(self, params, rng):
        with pytest.raises(ProverError, match="exceed"):
            low_degree_extend(F, F.random_vector(65, rng), params)


class TestHonestProofs:
    @pytest.mark.parametrize("degree", [1, 4, 17, 63, 64])
    def test_accepts_low_degree(self, degree, prover, verifier, rng):
        proof = prover.prove(F.random_vector(degree, rng))
        assert verifier.verify(proof)

    def test_zero_polynomial(self, prover, verifier):
        proof = prover.prove([0] * 8)
        assert verifier.verify(proof)

    def test_deterministic(self, prover, rng):
        coeffs = F.random_vector(20, rng)
        assert prover.prove(coeffs) == prover.prove(coeffs)

    def test_other_field(self, rng):
        params = FriParameters(field=BABYBEAR, degree_bound=32, blowup=4,
                               final_degree=2, query_count=6)
        proof = FriProver(params).prove(BABYBEAR.random_vector(30, rng))
        assert FriVerifier(params).verify(proof)

    def test_proof_shape(self, params, prover, rng):
        proof = prover.prove(F.random_vector(40, rng))
        assert len(proof.roots) == params.round_count + 1
        assert len(proof.queries) == params.query_count
        assert all(len(q) == params.round_count for q in proof.queries)
        assert len(proof.final_coefficients) <= params.final_degree


class TestSoundnessChecks:
    def test_prover_rejects_high_degree(self, prover, rng):
        with pytest.raises(ProverError):
            prover.prove(F.random_vector(65, rng))

    def test_tampered_final_poly(self, prover, verifier, rng):
        proof = prover.prove(F.random_vector(30, rng))
        bad = dataclasses.replace(
            proof,
            final_coefficients=tuple((c + 1) % F.modulus
                                     for c in proof.final_coefficients))
        assert not verifier.verify(bad)

    def test_tampered_root(self, prover, verifier, rng):
        proof = prover.prove(F.random_vector(30, rng))
        bad = dataclasses.replace(
            proof, roots=(proof.roots[0][::-1],) + proof.roots[1:])
        assert not verifier.verify(bad)

    def test_tampered_opening(self, prover, verifier, rng):
        proof = prover.prove(F.random_vector(30, rng))
        first_query = proof.queries[0]
        opened = first_query[0]
        bad_path = dataclasses.replace(
            opened.point_path,
            leaf=(opened.point_path.leaf + 1) % F.modulus)
        bad_round = dataclasses.replace(opened, point_path=bad_path)
        bad_queries = ((bad_round,) + first_query[1:],) + proof.queries[1:]
        assert not verifier.verify(
            dataclasses.replace(proof, queries=bad_queries))

    def test_truncated_rounds(self, prover, verifier, rng):
        proof = prover.prove(F.random_vector(30, rng))
        bad = dataclasses.replace(proof, roots=proof.roots[:-1])
        assert not verifier.verify(bad)

    def test_oversized_final_poly(self, prover, verifier, params, rng):
        proof = prover.prove(F.random_vector(30, rng))
        padded = proof.final_coefficients + (1,) * (
            params.final_degree + 1 - len(proof.final_coefficients))
        assert not verifier.verify(
            dataclasses.replace(proof, final_coefficients=padded))


class TestTranscript:
    def test_deterministic(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb(b"x")
        t2.absorb(b"x")
        assert t1.challenge_field(F) == t2.challenge_field(F)

    def test_absorption_changes_challenges(self):
        t1, t2 = Transcript(), Transcript()
        t1.absorb(b"x")
        t2.absorb(b"y")
        assert t1.challenge_field(F) != t2.challenge_field(F)

    def test_sequential_challenges_differ(self):
        t = Transcript()
        assert t.challenge_field(F) != t.challenge_field(F)

    def test_index_in_bounds(self):
        t = Transcript()
        for bound in (1, 7, 256):
            assert 0 <= t.challenge_index(bound) < bound
