"""Hash-based (STARK-style) workload: FRI low-degree proofs.

The second family of ZKP systems the paper's NTT acceleration serves:
STARKs replace elliptic-curve commitments with Merkle trees and FRI, so
*all* of their prover time is NTT + hashing — no MSM to hide behind.
This example proves low-degreeness of a trace polynomial over
Goldilocks, shows where the transforms are, and runs the low-degree
extension on the simulated multi-GPU engine.

Run:  python examples/stark_fri.py
"""

import random
import time

from repro.field import GOLDILOCKS
from repro.multigpu import DistributedVector, UniNTTEngine
from repro.ntt import coset_ntt
from repro.sim import SimCluster
from repro.zkp import FriParameters, FriProver, FriVerifier


def full_stark() -> None:
    """The complete hash-based flow: trace -> composition -> FRI."""
    from repro.zkp import SquareAffineAir, StarkProver, StarkVerifier

    air = SquareAffineAir(field=GOLDILOCKS, length=256)
    trace = air.trace_from_seed(7)
    prover = StarkProver(air, blowup=8, query_count=16, final_degree=8)
    verifier = StarkVerifier(air, blowup=8, query_count=16,
                             final_degree=8)
    start = time.perf_counter()
    proof = prover.prove(trace)
    prove_ms = (time.perf_counter() - start) * 1e3
    assert verifier.verify(proof)
    print(f"full STARK: 256-step square-affine chain proved in "
          f"{prove_ms:.1f} ms and verified")
    print(f"  public boundary: t[0]={proof.boundary[0]}, "
          f"t[255]={proof.boundary[1] % 10**12}... "
          f"({len(proof.fri_proof.roots)} FRI layers, "
          f"{len(proof.trace_openings)} queries)\n")


def main() -> None:
    field = GOLDILOCKS
    rng = random.Random(7)
    full_stark()

    # --- 1. A "trace polynomial": degree < 2^10, blowup 4.
    params = FriParameters(field=field, degree_bound=1 << 10, blowup=4,
                           final_degree=8, query_count=20)
    trace_coeffs = field.random_vector(params.degree_bound, rng)
    print(f"trace: degree < 2^10 over {field.name}, "
          f"FRI domain 2^{params.domain_size.bit_length() - 1}, "
          f"{params.round_count} folding rounds, "
          f"{params.query_count} queries")

    # --- 2. Prove and verify.
    prover = FriProver(params)
    verifier = FriVerifier(params)
    start = time.perf_counter()
    proof = prover.prove(trace_coeffs)
    prove_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    assert verifier.verify(proof)
    verify_ms = (time.perf_counter() - start) * 1e3
    print(f"proof generated in {prove_ms:.1f} ms, "
          f"verified in {verify_ms:.1f} ms")
    print(f"commitments: {len(proof.roots)} Merkle roots; final "
          f"polynomial: {len(proof.final_coefficients)} coefficients")

    # --- 3. A cheating prover is caught by its own degree check.
    try:
        prover.prove(field.random_vector(params.degree_bound + 1, rng))
        raise AssertionError("should have refused")
    except Exception as error:
        print(f"degree-bound violation rejected: "
              f"{type(error).__name__}")

    # --- 4. The dominant NTT: the low-degree extension, run distributed.
    n = params.domain_size
    padded = trace_coeffs + [0] * (n - len(trace_coeffs))
    shift = params.coset_shift()
    reference = coset_ntt(field, padded, shift)

    cluster = SimCluster(field, 8)
    engine = UniNTTEngine(cluster)
    # Coset shift fuses into the input scaling (twiddle-like), then the
    # distributed transform runs as usual.
    p = field.modulus
    from repro.ntt.twiddle import default_cache
    shifted = [v * t % p for v, t in
               zip(padded, default_cache.powers(field, shift, n))]
    vec = DistributedVector.from_values(cluster, shifted,
                                        engine.input_layout(n))
    out = engine.forward(vec)
    assert out.to_values() == reference
    summary = cluster.trace.summary()
    print(f"distributed LDE of 2^{n.bit_length() - 1} points on 8 "
          f"simulated GPUs: bit-exact, "
          f"{summary['collectives']} collective(s), "
          f"{summary['bytes_by_level'].get('multi-gpu', 0):,} "
          f"inter-GPU bytes")


if __name__ == "__main__":
    main()
