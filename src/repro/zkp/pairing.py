"""A real Tate pairing on a toy supersingular curve.

Everything else in :mod:`repro.zkp` verifies pairing-based proofs with
the setup trapdoor, because production pairings (BN254's optimal ate
over an Fp12 tower) are out of scope.  This module closes the loop at
*demonstration scale*: a genuine Miller-loop Tate pairing — bilinear,
non-degenerate, trapdoor-free — on the supersingular curve

    E: y^2 = x^3 + x   over GF(p),   p = 12*r - 1,   p = 3 (mod 4)

whose group is cyclic of order ``p + 1 = 12 * r`` with **r = the
BabyBear prime**: the pairing's scalar field is NTT-friendly, so KZG
commitments over this curve plug straight into the rest of the library.

Supersingularity gives embedding degree 2 and the distortion map
``phi(x, y) = (-x, i*y)`` into E(Fp2) (``i^2 = -1``), so both pairing
inputs come from the one subgroup ``E(Fp)[r]`` — no G2 machinery.  The
Miller loop uses the standard denominator elimination for even
embedding degree (vertical lines evaluate into Fp and die in the final
exponentiation's ``p - 1`` factor).

Security note: a 35-bit base field is cryptographically worthless by
construction; the point is an executable, property-tested pairing and
the witness-free KZG verification it enables
(:func:`kzg_check_with_pairing`).
"""

from __future__ import annotations

from repro.errors import CurveError
from repro.field.presets import BABYBEAR
from repro.field.prime_field import PrimeField
from repro.zkp.curve import CurveParams, CurvePoint
from repro.zkp.kzg import KzgOpening
from repro.zkp.prover import ProvingKey

__all__ = ["TOY_PAIRING_FP", "TOY_PAIRING_CURVE", "Fp2", "distortion_ok",
           "tate_pairing", "kzg_check_with_pairing"]

#: Base field: p = 12 * BabyBear - 1 (prime, 3 mod 4).
TOY_PAIRING_FP = PrimeField(12 * BABYBEAR.modulus - 1,
                            name="ToyPairing-Fp")

_P = TOY_PAIRING_FP.modulus
_R = BABYBEAR.modulus
_COFACTOR = 12


def _find_generator() -> tuple[int, int]:
    """A point of exact order r: cofactor-cleared curve point."""
    p = _P
    for x in range(1, 1000):
        rhs = (x * x * x + x) % p
        y = pow(rhs, (p + 1) // 4, p)  # sqrt for p = 3 (mod 4)
        if y * y % p != rhs:
            continue
        candidate = CurvePoint(_RAW_CURVE, x, y, 1) * _COFACTOR
        if not candidate.is_infinity():
            affine = candidate.affine()
            assert affine is not None
            return affine
    raise CurveError("no generator found (parameter bug)")


# A throwaway params object for the search (generator validated after).
_RAW_CURVE = CurveParams(name="ToyPairing-raw", base=TOY_PAIRING_FP, a=1,
                         b=0, generator_x=0, generator_y=0,
                         order=_R * _COFACTOR)

_GX, _GY = _find_generator()

#: The order-r subgroup of E(Fp): the pairing group G1 (and, through the
#: distortion map, G2).
TOY_PAIRING_CURVE = CurveParams(name="ToyPairing", base=TOY_PAIRING_FP,
                                a=1, b=0, generator_x=_GX,
                                generator_y=_GY, order=_R)


class Fp2:
    """GF(p^2) = GF(p)[i] / (i^2 + 1) — the pairing's target field."""

    __slots__ = ("c0", "c1")

    def __init__(self, c0: int, c1: int = 0):
        self.c0 = c0 % _P
        self.c1 = c1 % _P

    @classmethod
    def one(cls) -> "Fp2":
        return cls(1, 0)

    def __mul__(self, other: "Fp2") -> "Fp2":
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        return Fp2(a0 * b0 - a1 * b1, a0 * b1 + a1 * b0)

    def square(self) -> "Fp2":
        a0, a1 = self.c0, self.c1
        return Fp2((a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def conjugate(self) -> "Fp2":
        return Fp2(self.c0, -self.c1)

    def inverse(self) -> "Fp2":
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % _P
        if norm == 0:
            raise CurveError("zero has no inverse in Fp2")
        inv = pow(norm, -1, _P)
        return Fp2(self.c0 * inv, -self.c1 * inv)

    def pow(self, exponent: int) -> "Fp2":
        result = Fp2.one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Fp2) and self.c0 == other.c0
                and self.c1 == other.c1)

    def __hash__(self) -> int:
        return hash((self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp2({self.c0} + {self.c1}i)"


def distortion_ok(point: CurvePoint) -> bool:
    """Check phi(x, y) = (-x, i*y) lands on E over Fp2.

    ``(i*y)^2 = -y^2 = -(x^3 + x) = (-x)^3 + (-x)`` — the defining
    property of the distortion map, verified numerically.
    """
    affine = point.affine()
    if affine is None:
        return True
    x, y = affine
    lhs = Fp2(0, y).square()
    minus_x = (-x) % _P
    rhs = Fp2(minus_x ** 3 + minus_x)  # (-x)^3 + (-x), purely real
    return lhs == rhs


def _line(t: tuple[int, int], s: tuple[int, int],
          q: tuple[int, int]) -> Fp2:
    """Evaluate the line through T and S at the distorted point phi(Q).

    ``phi(Q) = (-xq, i*yq)``: the value is ``i*yq - yT - lambda*(-xq -
    xT)``, an Fp2 element with imaginary part ``yq``.  Vertical lines
    (and the tangent at a 2-torsion point) return 1 — denominator
    elimination for even embedding degree.
    """
    xt, yt = t
    xs, ys = s
    xq, yq = q
    p = _P
    if t == s:
        if yt == 0:
            return Fp2.one()
        slope = (3 * xt * xt + 1) * pow(2 * yt, -1, p) % p
    else:
        if xt == xs:
            return Fp2.one()
        slope = (ys - yt) * pow(xs - xt, -1, p) % p
    real = (-yt - slope * ((-xq - xt) % p)) % p
    return Fp2(real, yq)


def tate_pairing(p_point: CurvePoint, q_point: CurvePoint) -> Fp2:
    """The reduced Tate pairing ``e(P, phi(Q))`` for P, Q in E(Fp)[r].

    Returns an element of the order-r subgroup of Fp2* (mu_r);
    ``e(aP, bQ) = e(P, Q)^(a*b)`` and ``e(G, G) != 1``.
    """
    for point in (p_point, q_point):
        if point.curve != TOY_PAIRING_CURVE:
            raise CurveError("pairing inputs must lie on the toy "
                             "pairing curve")
    if p_point.is_infinity() or q_point.is_infinity():
        return Fp2.one()
    p_affine = p_point.affine()
    q_affine = q_point.affine()
    assert p_affine is not None and q_affine is not None

    # Miller loop over the bits of r (MSB first, skipping the top bit).
    f = Fp2.one()
    t = p_affine
    for bit in bin(_R)[3:]:
        f = f.square() * _line(t, t, q_affine)
        t = _double(t)
        if bit == "1" and t is not None:
            f = f * _line(t, p_affine, q_affine)
            t = _add(t, p_affine)
        if t is None:
            t = p_affine  # unreachable for prime r; keeps types tight
    # Final exponentiation: (p^2 - 1)/r = (p - 1) * (p + 1)/r.
    f = f.conjugate() * f.inverse()          # f^(p-1)
    return f.pow((_P + 1) // _R)


def _double(t: tuple[int, int]) -> tuple[int, int] | None:
    x, y = t
    p = _P
    if y == 0:
        return None
    slope = (3 * x * x + 1) * pow(2 * y, -1, p) % p
    x3 = (slope * slope - 2 * x) % p
    return x3, (slope * (x - x3) - y) % p


def _add(t: tuple[int, int], s: tuple[int, int]) -> tuple[int, int] | None:
    if t == s:
        return _double(t)
    xt, yt = t
    xs, ys = s
    p = _P
    if xt == xs:
        return None
    slope = (ys - yt) * pow(xs - xt, -1, p) % p
    x3 = (slope * slope - xt - xs) % p
    return x3, (slope * (xt - x3) - yt) % p


def kzg_check_with_pairing(srs: ProvingKey, commitment: CurvePoint,
                           opening: KzgOpening) -> bool:
    """Witness-free, trapdoor-free KZG verification.

    Checks ``e(C - [v]G, phi(G)) == e(W, phi([tau]G - [z]G))`` — by
    bilinearity this holds iff ``dlog(C) - v == dlog(W) * (tau - z)``,
    i.e. iff the opened value is the committed polynomial's evaluation.
    The SRS must live on :data:`TOY_PAIRING_CURVE` (BabyBear scalars).
    """
    if srs.curve != TOY_PAIRING_CURVE:
        raise CurveError("pairing verification needs a toy-pairing-curve "
                         "SRS (scalars in BabyBear)")
    if srs.size < 2:
        raise CurveError("SRS must contain [tau]G (size >= 2)")
    g = srs.curve.generator()
    tau_g = srs.tau_powers[1]
    lhs = tate_pairing(commitment - g * opening.value, g)
    rhs = tate_pairing(opening.witness, tau_g - g * opening.point)
    return lhs == rhs
