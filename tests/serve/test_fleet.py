"""Fleet mechanics: policy, routing, detector, stealing, pricing.

The chaos-grid end-to-end guarantees live in ``test_fleet_chaos.py``;
this file pins the pieces: configuration validation, consistent-hash
routing, heartbeat accounting, work stealing, per-tenant QoS wiring,
and the priced coordination overhead.
"""

import json

import pytest

from repro.errors import ServeError
from repro.hw import DGX_A100
from repro.serve import (
    ConsistentHashRouter, FleetPolicy, FleetReport, FleetServer,
    ProofServer, WorkloadSpec, generate_workload,
)
from repro.sim import FaultPlan


def _workload(count=12, log_sizes=(6, 7), interarrival=1e-4, **kwargs):
    spec = WorkloadSpec(requests=count, log_sizes=log_sizes,
                        field_names=("Goldilocks",),
                        mean_interarrival_s=interarrival, seed=0xF1EE7,
                        **kwargs)
    return generate_workload(spec)


class TestFleetPolicy:
    def test_defaults_are_valid(self):
        policy = FleetPolicy()
        assert policy.replicas == 2
        assert policy.failover_phi > policy.suspect_phi

    @pytest.mark.parametrize("kwargs", [
        dict(replicas=0),
        dict(heartbeat_interval_s=0.0),
        dict(heartbeat_interval_s=float("nan")),
        dict(suspect_phi=0.0),
        dict(suspect_phi=4.0, failover_phi=4.0),   # must be strict
        dict(suspect_phi=5.0, failover_phi=4.0),
        dict(vnodes=0),
        dict(spread=0),
        dict(steal_threshold=1),
        dict(steal_max=0),
        dict(tenant_weights=(("a", 0.0),)),
        dict(tenant_weights=(("", 1.0),)),
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ServeError):
            FleetPolicy(**kwargs)


class TestConsistentHashRouter:
    def test_routing_is_deterministic_and_shape_affine(self):
        router = ConsistentHashRouter(4)
        requests = _workload(8, log_sizes=(6,))
        key = router.key_of(requests[0])
        alive = {0, 1, 2, 3}
        first = router.route(key, alive, spread=2, load=lambda r: 0)
        for request in requests:
            assert router.key_of(request) == key
            assert router.route(key, alive, spread=2,
                                load=lambda r: 0) == first

    def test_dead_replicas_are_never_candidates(self):
        router = ConsistentHashRouter(4)
        key = ("Goldilocks", 6, "forward")
        for dead in range(4):
            alive = {0, 1, 2, 3} - {dead}
            assert dead not in router.candidates(key, alive, spread=4)

    def test_spread_bounds_candidates_and_load_breaks_ties(self):
        router = ConsistentHashRouter(4)
        key = ("Goldilocks", 6, "forward")
        alive = {0, 1, 2, 3}
        candidates = router.candidates(key, alive, spread=2)
        assert len(candidates) == 2
        primary, alternate = candidates
        # Pile load on the primary: the alternate must win.
        load = {primary: 10, alternate: 0}.get
        assert router.route(key, alive, spread=2, load=load) == alternate
        # Equal load: ring order (the primary) wins.
        assert router.route(key, alive, spread=2,
                            load=lambda r: 0) == primary

    def test_no_live_replicas_raises(self):
        router = ConsistentHashRouter(2)
        assert router.candidates(("k",), set(), spread=2) == []
        with pytest.raises(ServeError, match="no live replicas"):
            router.route(("k",), set(), spread=2, load=lambda r: 0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ServeError):
            ConsistentHashRouter(0)
        with pytest.raises(ServeError):
            ConsistentHashRouter(2, vnodes=0)


class TestFleetServer:
    def test_single_replica_fleet_matches_single_server(self):
        workload = _workload()
        single = ProofServer(DGX_A100).serve(workload)
        fleet = FleetServer(DGX_A100,
                            policy=FleetPolicy(replicas=1, spread=1))
        report = fleet.serve(workload)
        assert report.completed == single.completed == len(workload)
        reference = {r.request.request_id: r.outputs
                     for r in single.results}
        for result in report.results:
            assert result.outputs == reference[result.request.request_id]

    def test_results_are_merged_sorted_and_unique(self):
        fleet = FleetServer(DGX_A100, policy=FleetPolicy(replicas=3))
        report = fleet.serve(_workload(16))
        ids = [r.request.request_id for r in report.results]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids) == 16

    def test_fleet_is_one_shot(self):
        fleet = FleetServer(DGX_A100)
        fleet.serve(_workload(4))
        with pytest.raises(ServeError, match="one-shot"):
            fleet.serve(_workload(4))

    def test_duplicate_request_ids_rejected(self):
        workload = _workload(4)
        workload.append(workload[0])
        with pytest.raises(ServeError, match="duplicate"):
            FleetServer(DGX_A100).serve(workload)

    def test_fabric_faults_belong_on_the_injector(self):
        plan = FaultPlan.from_specs(["transient-comm@0"])
        with pytest.raises(ServeError, match="fleet kinds"):
            FleetServer(DGX_A100, faults=plan)

    def test_fault_replica_must_exist(self):
        plan = FaultPlan.from_specs(["replica-crash@1:replica=5"])
        with pytest.raises(ServeError, match="only 2"):
            FleetServer(DGX_A100, policy=FleetPolicy(replicas=2),
                        faults=plan)

    def test_heartbeats_are_counted_and_priced(self):
        fleet = FleetServer(DGX_A100, policy=FleetPolicy(replicas=2))
        report = fleet.serve(_workload())
        assert report.heartbeats > 0
        assert report.heartbeat_s > 0.0
        assert report.route_s > 0.0
        assert report.routed == len(report.results)

    def test_work_stealing_rebalances_a_hot_shape(self):
        # One shape hashes to one home (spread=1): an idle replica
        # must steal from the loaded one instead of sitting out.
        workload = _workload(16, log_sizes=(6,), interarrival=0.0)
        policy = FleetPolicy(replicas=2, spread=1, steal_threshold=2)
        fleet = FleetServer(DGX_A100, policy=policy)
        report = fleet.serve(workload)
        assert report.steals > 0
        assert report.stolen_requests > 0
        assert report.steal_s > 0.0
        busy = [r for r in report.replica_reports if r.completed > 0]
        assert len(busy) == 2, "the idle replica never served"

    def test_stealing_can_be_disabled(self):
        workload = _workload(16, log_sizes=(6,), interarrival=0.0)
        policy = FleetPolicy(replicas=2, spread=1, steal_enabled=False)
        report = FleetServer(DGX_A100, policy=policy).serve(workload)
        assert report.steals == 0

    def test_tenant_weights_reach_every_replica_queue(self):
        policy = FleetPolicy(replicas=2,
                             tenant_weights=(("gold", 4.0), ("free", 1.0)))
        fleet = FleetServer(DGX_A100, policy=policy)
        for replica in fleet.replicas:
            assert replica.queue.weight("gold") == 4.0
            assert replica.queue.weight("free") == 1.0
            assert replica.queue.weight("unlisted") == 1.0

    def test_tenant_breakdown_merges_across_replicas(self):
        workload = _workload(12, tenants=("a", "b"),
                             tenant_weights=(1.0, 1.0))
        report = FleetServer(DGX_A100,
                             policy=FleetPolicy(replicas=2)).serve(workload)
        breakdown = report.tenant_breakdown()
        assert set(breakdown) == {"a", "b"}
        assert sum(b["completed"] for b in breakdown.values()) \
            == report.completed

    def test_plan_cost_includes_coordination_overhead(self):
        fleet = FleetServer(DGX_A100, policy=FleetPolicy(replicas=2))
        report = fleet.serve(_workload())
        cost = report.plan_cost(DGX_A100)
        replica_total = sum(
            r.plan_cost(DGX_A100).total_s for r in report.replica_reports)
        assert cost.total_s == pytest.approx(
            replica_total + report.overhead_s)
        assert report.overhead_s > 0.0

    def test_report_json_round_trips(self):
        report = FleetServer(DGX_A100).serve(_workload(6))
        payload = json.loads(report.to_json())
        assert payload["replicas"] == 2
        assert payload["completed"] == 6
        assert payload["machine"] == "DGX-A100"
        assert len(payload["replica_summaries"]) == 2
        assert payload["goodput_rps"] > 0

    def test_goodput_counts_only_completions(self):
        report = FleetReport(machine_name="m", policy=FleetPolicy())
        assert report.goodput_rps() == 0.0
