"""Bailey four-step and six-step NTT (the classic out-of-core baseline).

The input of size ``n = R * C`` is viewed as an R-row, C-column matrix in
row-major order (``x[r*C + c]``).  The forward transform with output
index split ``k = k1 + R*k2`` (``k1 < R``, ``k2 < C``) is:

1. an R-point NTT down every **column** (stride-C accesses);
2. a pointwise **twiddle** scaling by ``w^(c * k1)``;
3. a C-point NTT along every **row** (contiguous accesses);
4. a **transpose** to put the output in natural order.

Steps 2 and 4 are the "overheads" the paper's decomposition eliminates:
a separate twiddle sweep and a separate transpose pass each read and
write the whole array once.  The multi-GPU baseline in
:mod:`repro.multigpu.baseline` distributes exactly this algorithm, where
step 1's strided accesses and step 4's transpose become all-to-all
exchanges.

The six-step variant replaces the strided column transforms with
transpose / row-transform / transpose, which is how cache-blocked CPU and
global-memory GPU implementations actually run it.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt import radix2
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = [
    "split_size", "four_step_ntt", "four_step_intt", "six_step_ntt",
    "transpose_flat",
]


def split_size(n: int) -> tuple[int, int]:
    """Balanced factorization ``n = R * C`` with R, C powers of two.

    R <= C (the row transform runs on the larger, contiguous dimension).
    """
    if n <= 0 or n & (n - 1):
        raise NTTError(f"four-step size must be a power of two, got {n}")
    log_n = n.bit_length() - 1
    r_log = log_n // 2
    return 1 << r_log, 1 << (log_n - r_log)


def transpose_flat(values: Sequence[int], rows: int, cols: int) -> list[int]:
    """Transpose a row-major rows x cols matrix stored flat."""
    if len(values) != rows * cols:
        raise NTTError(
            f"cannot view {len(values)} elements as {rows}x{cols}")
    out = [0] * (rows * cols)
    for r in range(rows):
        base = r * cols
        for c in range(cols):
            out[c * rows + r] = values[base + c]
    return out


def _four_step(field: PrimeField, values: Sequence[int], root: int,
               rows: int, cols: int, cache: TwiddleCache) -> list[int]:
    """Core four-step driver for an arbitrary primitive (rows*cols)-root."""
    n = rows * cols
    p = field.modulus
    data = list(values)

    # Step 1: R-point NTT down each column (stride-C gathers).
    root_r = pow(root, cols, p)  # order `rows`
    for c in range(cols):
        column = data[c::cols]
        column = radix2.ntt(field, column, cache, root=root_r)
        data[c::cols] = column

    # Step 2: twiddle scaling  data[k1][c] *= root^(c*k1).
    for k1 in range(1, rows):
        row_tw = cache.powers(field, pow(root, k1, p), cols)
        base = k1 * cols
        for c in range(1, cols):
            data[base + c] = data[base + c] * row_tw[c] % p

    # Step 3: C-point NTT along each row (contiguous).
    root_c = pow(root, rows, p)  # order `cols`
    for k1 in range(rows):
        base = k1 * cols
        data[base:base + cols] = radix2.ntt(
            field, data[base:base + cols], cache, root=root_c)

    # Step 4: transpose so X[k1 + R*k2] lands at index k1 + R*k2.
    return transpose_flat(data, rows, cols)


def four_step_ntt(field: PrimeField, values: Sequence[int],
                  rows: int | None = None,
                  cache: TwiddleCache | None = None,
                  root: int | None = None) -> list[int]:
    """Forward four-step NTT, natural order in and out."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"four-step size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    if rows is None:
        rows, cols = split_size(n)
    else:
        if rows <= 0 or n % rows:
            raise NTTError(f"rows={rows} does not divide n={n}")
        cols = n // rows
    if rows == 1 or cols == 1:
        return radix2.ntt(field, values, cache, root=root)
    w = field.root_of_unity(n) if root is None else root
    return _four_step(field, values, w, rows, cols, cache)


def four_step_intt(field: PrimeField, values: Sequence[int],
                   rows: int | None = None,
                   cache: TwiddleCache | None = None,
                   root: int | None = None) -> list[int]:
    """Inverse four-step NTT (includes the 1/n scaling)."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"four-step size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    w = field.root_of_unity(n) if root is None else root
    out = four_step_ntt(field, values, rows, cache, root=field.inv(w))
    p = field.modulus
    n_inv = field.inv(n % p)
    return [v * n_inv % p for v in out]


def six_step_ntt(field: PrimeField, values: Sequence[int],
                 rows: int | None = None,
                 cache: TwiddleCache | None = None,
                 root: int | None = None) -> list[int]:
    """Six-step NTT: all transforms contiguous, three explicit transposes.

    Same result as :func:`four_step_ntt`; the extra transposes model the
    memory passes a cache-blocked implementation pays to avoid strided
    access.
    """
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"six-step size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    if rows is None:
        rows, cols = split_size(n)
    else:
        if rows <= 0 or n % rows:
            raise NTTError(f"rows={rows} does not divide n={n}")
        cols = n // rows
    if rows == 1 or cols == 1:
        return radix2.ntt(field, values, cache, root=root)
    p = field.modulus
    w = field.root_of_unity(n) if root is None else root

    # T1: columns become rows.
    data = transpose_flat(values, rows, cols)          # now cols x rows
    # S2: R-point NTTs, contiguous.
    root_r = pow(w, cols, p)
    for c in range(cols):
        base = c * rows
        data[base:base + rows] = radix2.ntt(
            field, data[base:base + rows], cache, root=root_r)
    # S3: twiddle  data[c][k1] *= w^(c*k1).
    for c in range(1, cols):
        tw = cache.powers(field, pow(w, c, p), rows)
        base = c * rows
        for k1 in range(1, rows):
            data[base + k1] = data[base + k1] * tw[k1] % p
    # T4: back to rows x cols.
    data = transpose_flat(data, cols, rows)
    # S5: C-point NTTs, contiguous.
    root_c = pow(w, rows, p)
    for k1 in range(rows):
        base = k1 * cols
        data[base:base + cols] = radix2.ntt(
            field, data[base:base + cols], cache, root=root_c)
    # T6: final transpose into natural order.
    return transpose_flat(data, rows, cols)
