"""Benchmark workload descriptors (the reconstructed workloads table T2).

A workload is a (field, transform size, batch) triple.  The standard
grid mirrors what ZKP systems actually transform: BLS12-381/BN254
scalars for pairing-based SNARKs at 2^18..2^28, Goldilocks/BabyBear for
STARK-ish systems at the same sizes, and small sizes for the functional
(wall-clock) benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.field.presets import ZKP_FIELDS, field_by_name
from repro.field.prime_field import PrimeField

__all__ = ["NTTWorkload", "standard_workloads", "functional_workloads",
           "STANDARD_LOG_SIZES", "FUNCTIONAL_LOG_SIZES"]

#: Analytic (cost-model) sweep sizes.
STANDARD_LOG_SIZES = (18, 20, 22, 24, 26, 28)

#: Sizes small enough to execute functionally in the simulator.
FUNCTIONAL_LOG_SIZES = (10, 12, 14)


@dataclass(frozen=True)
class NTTWorkload:
    """One benchmark configuration."""

    field_name: str
    log_size: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.log_size < 1:
            raise BenchmarkError(f"log_size must be >= 1, got {self.log_size}")
        if self.batch < 1:
            raise BenchmarkError(f"batch must be >= 1, got {self.batch}")

    @property
    def size(self) -> int:
        return 1 << self.log_size

    @property
    def field(self) -> PrimeField:
        return field_by_name(self.field_name)

    @property
    def elements(self) -> int:
        return self.batch * self.size

    def label(self) -> str:
        suffix = f" x{self.batch}" if self.batch > 1 else ""
        return f"{self.field_name} 2^{self.log_size}{suffix}"


def standard_workloads() -> list[NTTWorkload]:
    """The full analytic grid: every ZKP field at every standard size."""
    return [NTTWorkload(field_name=field.name, log_size=log_size)
            for field in ZKP_FIELDS
            for log_size in STANDARD_LOG_SIZES]


def functional_workloads() -> list[NTTWorkload]:
    """Sizes the functional simulator executes in reasonable time."""
    return [NTTWorkload(field_name=field.name, log_size=log_size)
            for field in ZKP_FIELDS
            for log_size in FUNCTIONAL_LOG_SIZES]
