"""Twiddle-factor tables.

Every NTT engine needs powers of a primitive root.  Real GPU kernels
precompute these tables once per (field, size) and keep them resident in
device memory; we mirror that with a process-wide cache so repeated
transforms (the common ZKP case: thousands of same-size NTTs) do not
regenerate tables.

The cache keeps hit/miss/eviction counters so higher layers — the
proof-serving scheduler in :mod:`repro.serve` above all — can *price*
table generation honestly: a miss costs one modular multiplication per
generated entry, a hit costs zero recompute.  An optional
``max_tables`` bound turns the cache into an LRU (least recently used
table evicted first), which models finite device memory for resident
twiddles.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.field.vector import vec_pow_series

__all__ = ["TwiddleCache", "default_cache", "bit_reverse", "bit_reverse_permutation"]


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_permutation(n: int) -> list[int]:
    """The permutation ``i -> bit_reverse(i)`` for a power-of-two n."""
    if n & (n - 1):
        raise NTTError(f"bit-reversal needs a power-of-two size, got {n}")
    bits = n.bit_length() - 1
    return [bit_reverse(i, bits) for i in range(n)]


class TwiddleCache:
    """Cache of root-power tables keyed by (field modulus, root, length).

    ``max_tables`` (optional) bounds the number of resident power
    tables; inserting past the bound evicts the least recently used
    table (and its packed mirror) and bumps ``evictions``.
    """

    def __init__(self, max_tables: int | None = None) -> None:
        if max_tables is not None and max_tables < 1:
            raise NTTError(
                f"max_tables must be >= 1 when set, got {max_tables}")
        self.max_tables = max_tables
        self._tables: OrderedDict[tuple[int, int, int], list[int]] = \
            OrderedDict()
        self._bitrev: dict[int, list[int]] = {}
        self._packed: dict[tuple[int, int, int, str], object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.generated_entries = 0

    def powers(self, field: PrimeField, root: int, count: int) -> list[int]:
        """Return ``[1, root, root^2, ..., root^(count-1)]`` mod p."""
        key = (field.modulus, root, count)
        table = self._tables.get(key)
        if table is None:
            self.misses += 1
            table = vec_pow_series(field, root, count)
            self.generated_entries += count
            self._tables[key] = table
            self._evict_over_bound()
        else:
            self.hits += 1
            self._tables.move_to_end(key)
        return table

    def _evict_over_bound(self) -> None:
        if self.max_tables is None:
            return
        while len(self._tables) > self.max_tables:
            key, _ = self._tables.popitem(last=False)
            for packed_key in [k for k in self._packed if k[:3] == key]:
                del self._packed[packed_key]
            self.evictions += 1

    def packed_powers(self, field: PrimeField, root: int, count: int, pack,
                      fmt: str = "u64"):
        """:meth:`powers`, packed by ``pack`` into a lane-backend array.

        Real kernels keep twiddles resident in device memory in device
        format; the vectorized backends mirror that by caching the
        packed form alongside the int table, so repeated transforms
        skip the list-to-array conversion.  ``fmt`` names the lane
        format (``u64`` lanes by default; the multi-limb backend passes
        its schedule tag, e.g. ``limb29x9``, and packs tables in
        Montgomery form) so differently-packed mirrors of one table
        coexist.
        """
        key = (field.modulus, root, count, fmt)
        packed = self._packed.get(key)
        if packed is None:
            packed = pack(self.powers(field, root, count))
            self._packed[key] = packed
        return packed

    def contains(self, field: PrimeField, root: int, count: int) -> bool:
        """Whether a power table is resident (no counter side effects)."""
        return (field.modulus, root, count) in self._tables

    def forward(self, field: PrimeField, n: int) -> list[int]:
        """Powers of the primitive n-th root (half-table, n/2 entries)."""
        return self.powers(field, field.root_of_unity(n), max(n // 2, 1))

    def inverse(self, field: PrimeField, n: int) -> list[int]:
        """Powers of the inverse n-th root (half-table)."""
        return self.powers(field, field.inv_root_of_unity(n), max(n // 2, 1))

    def bitrev(self, n: int) -> list[int]:
        """Cached bit-reversal permutation for size n."""
        perm = self._bitrev.get(n)
        if perm is None:
            perm = bit_reverse_permutation(n)
            self._bitrev[n] = perm
        return perm

    def clear(self) -> None:
        """Drop all cached tables (used by memory-pressure tests).

        Counters survive a clear: they describe the cache's lifetime
        service history, not its current occupancy.
        """
        self._tables.clear()
        self._bitrev.clear()
        self._packed.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (tables stay resident)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.generated_entries = 0

    def stats(self) -> dict[str, int]:
        """Cache occupancy and service counters (sorted keys)."""
        return {
            "bitrev_tables": len(self._bitrev),
            "entries": sum(len(t) for t in self._tables.values()),
            "evictions": self.evictions,
            "generated_entries": self.generated_entries,
            "hits": self.hits,
            "misses": self.misses,
            "tables": len(self._tables),
        }


#: Shared process-wide cache used by the engines when none is supplied.
default_cache = TwiddleCache()
