"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FieldError(ReproError):
    """Invalid finite-field construction or operation (e.g. inverting zero)."""


class NTTError(ReproError):
    """Invalid NTT request (size not a power of two, missing root, ...)."""


class PlanError(NTTError):
    """A decomposition plan is malformed or incompatible with its input."""


class HardwareModelError(ReproError):
    """Inconsistent hardware model description."""


class SimulationError(ReproError):
    """The functional multi-GPU simulator was driven into an invalid state."""


class PartitionError(SimulationError):
    """A data layout does not match the cluster it is mapped onto."""


class FaultPlanError(SimulationError):
    """A declarative fault plan is malformed (unknown kind, bad field)."""


class TransientCommError(SimulationError):
    """A collective failed transiently; retrying it may succeed."""


class DeviceLostError(SimulationError):
    """A GPU died; it will not come back for the rest of the run."""


class ShardCorruptionError(SimulationError):
    """An algebraic shard check caught corrupted in-flight data."""


class ResilienceError(SimulationError):
    """The resilient execution layer exhausted its recovery options."""


class SchedulePassError(PlanError):
    """A schedule rewrite or synthesis product failed its verification gate.

    Raised by the pass framework (:mod:`repro.analysis.passes`) when a
    rewritten or synthesized :class:`~repro.multigpu.schedule.CommSchedule`
    produces verifier findings, silently changes ``bytes_by_level()`` /
    ``total_field_muls()``, or cannot be interpreted on the simulator.
    """


class CurveError(ReproError):
    """Invalid elliptic-curve point or operation."""


class CircuitError(ReproError):
    """Malformed R1CS constraint system or unsatisfied witness."""


class ProverError(ReproError):
    """Proof generation pipeline failure."""


class BenchmarkError(ReproError):
    """Benchmark harness misconfiguration."""


class ServeError(ReproError):
    """Request-serving failure (bad workload, exhausted retries)."""


class JournalError(ServeError):
    """The write-ahead journal is unusable (gap, checksum mismatch)."""


class ServerCrashError(ServeError):
    """The serving process died mid-run (injected ``server-crash``).

    Carries ``crash_seq`` (the journal sequence number the crash fired
    at) and ``report`` (the partial :class:`~repro.serve.report.ServeReport`
    as clients observed it — results emitted before the crash).  The
    journal itself survives; a
    :class:`~repro.serve.durability.RecoveryManager` resumes from it.
    """

    def __init__(self, message: str, *, crash_seq: int = -1,
                 report=None) -> None:
        super().__init__(message)
        self.crash_seq = crash_seq
        self.report = report
