"""F14: multi-node scaling — the recursion's fifth level."""

from repro.bench import multi_node_scaling


def test_f14_multinode(benchmark, emit):
    table = benchmark(multi_node_scaling)
    emit("F14_multinode",
         "F14: multi-node NTT (DGX-A100 nodes over HDR InfiniBand)",
         table)
