"""Tests for the batched distributed transform."""

import pytest

from repro.errors import PartitionError, SimulationError
from repro.field import BLS12_381_FR, TEST_FIELD_7681
from repro.hw import DGX_A100
from repro.multigpu import BatchedDistributedNTT, UniNTTEngine
from repro.ntt import intt, ntt
from repro.sim import SimCluster

F = TEST_FIELD_7681


def make(strategy, gpus=4):
    cluster = SimCluster(F, gpus)
    return BatchedDistributedNTT(cluster, strategy=strategy)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["replicate", "split"])
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_matches_individual(self, strategy, batch_size, rng):
        engine = make(strategy)
        batch = [F.random_vector(64, rng) for _ in range(batch_size)]
        assert engine.forward(batch) == [ntt(F, v) for v in batch]

    @pytest.mark.parametrize("strategy", ["replicate", "split"])
    def test_roundtrip(self, strategy, rng):
        engine = make(strategy)
        batch = [F.random_vector(64, rng) for _ in range(5)]
        assert engine.inverse(engine.forward(batch)) == batch

    def test_replicate_needs_no_communication(self, rng):
        engine = make("replicate")
        engine.forward([F.random_vector(64, rng) for _ in range(8)])
        assert engine.cluster.trace.collective_count() == 0
        assert all(g.counters.bytes_sent == 0
                   for g in engine.cluster.gpus)

    def test_split_communicates(self, rng):
        engine = make("split")
        engine.forward([F.random_vector(64, rng)])
        assert engine.cluster.trace.collective_count() >= 1


class TestValidation:
    def test_bad_strategy(self):
        with pytest.raises(SimulationError, match="strategy"):
            BatchedDistributedNTT(SimCluster(F, 2), strategy="magic")

    def test_empty_batch(self):
        with pytest.raises(PartitionError, match="empty"):
            make("replicate").forward([])

    def test_ragged_batch(self):
        with pytest.raises(PartitionError, match="share a size"):
            make("replicate").forward([[1, 2], [1, 2, 3, 4]])

    def test_profile_batch_validation(self):
        with pytest.raises(PartitionError, match="batch"):
            make("replicate").forward_profile(64, 0)


class TestEstimates:
    def test_replicate_profile_uses_busiest_gpu(self):
        engine = make("replicate", gpus=4)
        # 5 vectors over 4 GPUs: the busiest does 2.
        profile = engine.forward_profile(256, 5)
        assert len(profile) == 1
        from repro.multigpu import local_ntt_muls
        assert profile[0].field_muls == 2 * local_ntt_muls(256)

    def test_split_profile_scales_with_batch(self):
        engine = make("split", gpus=4)
        one = engine.estimate(DGX_A100.with_gpu_count(4), 1 << 20, 1)
        four = engine.estimate(DGX_A100.with_gpu_count(4), 1 << 20, 4)
        assert four.total_s == pytest.approx(4 * one.total_s, rel=1e-6)

    def test_replicate_wins_throughput_on_nvswitch(self):
        cluster = SimCluster(BLS12_381_FR, 8)
        replicate = BatchedDistributedNTT(cluster, strategy="replicate")
        split = BatchedDistributedNTT(cluster, strategy="split")
        n, batch = 1 << 20, 16
        assert replicate.estimate(DGX_A100, n, batch).total_s < \
            split.estimate(DGX_A100, n, batch).total_s

    def test_crossover_finder(self):
        cluster = SimCluster(BLS12_381_FR, 8)
        engine = BatchedDistributedNTT(cluster)
        crossover = engine.crossover_batch(DGX_A100, 1 << 20)
        assert crossover is not None and crossover >= 1

    def test_custom_inner_engine(self, rng):
        cluster = SimCluster(F, 4)
        inner = UniNTTEngine(cluster, tile=256)
        engine = BatchedDistributedNTT(cluster, strategy="split",
                                       inner=inner)
        batch = [F.random_vector(64, rng)]
        assert engine.forward(batch) == [ntt(F, batch[0])]
