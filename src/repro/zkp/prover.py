"""A Groth16-style prover over BN254.

The full Groth16 protocol wraps the QAP quotient computation in a
pairing-based argument.  This reproduction implements the *prover's
computational pipeline* faithfully — the part the paper accelerates —
over the real BN254 G1 group:

* a powers-of-tau setup (:class:`ProvingKey`), kept toy-transparent: the
  test harness retains the trapdoor so proofs can be checked without
  pairings;
* :meth:`Prover.prove`: seven NTTs (via :class:`repro.zkp.qap.QAP`) and
  four Pippenger MSMs producing commitments to A, B, C and H;
* :meth:`Prover.check`: the pairing-free verification used in tests —
  the QAP identity ``A(tau)*B(tau) - C(tau) = H(tau)*Z(tau)`` evaluated
  at the trapdoor, plus the check that each commitment equals the
  claimed polynomial's evaluation in the exponent.

Pairing-based verification changes nothing about proof *generation*
cost, which is the quantity under study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProverError
from repro.field.presets import BN254_FR
from repro.zkp.curve import BN254_G1, CurveParams, CurvePoint
from repro.zkp.msm import msm_pippenger
from repro.zkp.polynomial import Polynomial
from repro.zkp.qap import QAP, QapWitnessPolynomials

__all__ = ["ProvingKey", "Proof", "Prover", "trusted_setup"]


@dataclass(frozen=True)
class ProvingKey:
    """Powers of tau in G1: ``[tau^i] G`` for ``i < size``."""

    curve: CurveParams
    tau_powers: tuple[CurvePoint, ...]

    @property
    def size(self) -> int:
        return len(self.tau_powers)

    def commit(self, poly: Polynomial) -> CurvePoint:
        """KZG-style commitment ``[poly(tau)] G`` by MSM."""
        if poly.degree >= self.size:
            raise ProverError(
                f"polynomial degree {poly.degree} exceeds setup size "
                f"{self.size}")
        if poly.is_zero():
            return self.curve.infinity()
        coeffs = list(poly.coeffs)
        return msm_pippenger(self.curve, coeffs,
                             list(self.tau_powers[:len(coeffs)]))


def trusted_setup(size: int, tau: int,
                  curve: CurveParams = BN254_G1) -> ProvingKey:
    """Generate ``[tau^i] G`` for i < size (toy ceremony; tau is the
    trapdoor the caller must keep for :meth:`Prover.check`)."""
    if size < 1:
        raise ProverError(f"setup size must be >= 1, got {size}")
    tau %= curve.order
    if tau == 0:
        raise ProverError("tau must be non-zero")
    generator = curve.generator()
    powers = []
    acc = 1
    for _ in range(size):
        powers.append(generator * acc)
        acc = acc * tau % curve.order
    return ProvingKey(curve=curve, tau_powers=tuple(powers))


@dataclass(frozen=True)
class Proof:
    """Commitments to the witness polynomials."""

    commit_a: CurvePoint
    commit_b: CurvePoint
    commit_c: CurvePoint
    commit_h: CurvePoint


class Prover:
    """Binds a QAP and a proving key; generates and checks proofs."""

    def __init__(self, qap: QAP, key: ProvingKey):
        if qap.field != BN254_FR:
            raise ProverError(
                f"the BN254 prover needs the BN254 scalar field, got "
                f"{qap.field.name}")
        if key.size < qap.domain.size:
            raise ProverError(
                f"setup of size {key.size} cannot commit degree "
                f"{qap.domain.size - 1} polynomials")
        self.qap = qap
        self.key = key

    def prove(self, witness: Sequence[int],
              blinding: tuple[int, int] | None = None,
              ) -> tuple[Proof, QapWitnessPolynomials]:
        """Generate a proof: 7 NTTs + 4 MSMs.

        ``blinding = (r, s)`` applies the standard zero-knowledge
        randomization: ``A' = A + r*Z`` and ``B' = B + s*Z`` hide the
        witness polynomials behind uniformly random multiples of the
        vanishing polynomial, and the quotient updates to
        ``H' = H + r*B + s*A + r*s*Z`` so the QAP identity
        ``A'*B' - C = H'*Z`` still holds exactly.  Requires one extra
        power in the setup (degree n polynomials).

        Returns the proof and the intermediate polynomials (the latter
        so tests and the pipeline model can inspect the workload).
        """
        import dataclasses

        polys = self.qap.witness_polynomials(witness)
        if blinding is not None:
            field = self.qap.field
            r, s = (value % field.modulus for value in blinding)
            z = Polynomial.vanishing(field, self.qap.domain.size)
            if self.key.size <= self.qap.domain.size:
                raise ProverError(
                    "blinding needs a setup of size domain+1 "
                    f"(degree-{self.qap.domain.size} polynomials)")
            blinded_h = (polys.h + polys.b.scale(r) + polys.a.scale(s)
                         + z.scale(r * s % field.modulus))
            polys = dataclasses.replace(
                polys, a=polys.a + z.scale(r), b=polys.b + z.scale(s),
                h=blinded_h)
        proof = Proof(
            commit_a=self.key.commit(polys.a),
            commit_b=self.key.commit(polys.b),
            commit_c=self.key.commit(polys.c),
            commit_h=self.key.commit(polys.h),
        )
        return proof, polys

    def check(self, proof: Proof, polys: QapWitnessPolynomials,
              tau: int) -> bool:
        """Pairing-free proof check using the setup trapdoor.

        1. each commitment opens to the claimed polynomial at tau;
        2. the QAP identity holds at tau:
           ``A(tau)*B(tau) - C(tau) == H(tau) * Z(tau)``.
        """
        field = self.qap.field
        p = field.modulus
        tau %= p
        generator = self.key.curve.generator()
        values = [poly.evaluate(tau) for poly in polys.all()]
        commitments = (proof.commit_a, proof.commit_b, proof.commit_c,
                       proof.commit_h)
        for value, commitment in zip(values, commitments):
            if generator * value != commitment:
                return False
        a_val, b_val, c_val, h_val = values
        z_val = self.qap.domain.vanishing_eval(tau)
        return (a_val * b_val - c_val) % p == h_val * z_val % p
