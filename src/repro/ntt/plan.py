"""Decomposition plans: the UniNTT recursive NTT structure.

The paper's core idea is a *recursive, overhead-free decomposition*: an
N-point NTT is split as ``N = R * C`` into C-point **local** transforms
on contiguous sub-sequences plus R-point **cross-unit** transforms whose
butterflies ride the communication fabric of one hierarchy level — and
each of those transforms may itself be split the same way.  Every level
of the hierarchy (warp, thread block, GPU, multi-GPU) therefore executes
*the same NTT computation at a different scale*.

A :class:`Plan` is the static description of that recursion: a binary
tree whose internal nodes record the (outer=R cross, inner=C local)
split and which hierarchy level the cross transform is mapped onto.
Plans are consumed by three clients:

* :mod:`repro.ntt.recursive` — a single-address-space executor used as
  the functional ground truth for any plan;
* :mod:`repro.multigpu.unintt` — the distributed engine, which maps the
  outermost split onto simulated GPUs;
* :mod:`repro.hw.cost` — the analytic cost model, which walks the tree
  charging each level's exchanges to that level's fabric.

The twiddle scaling between the two halves of a split is attached to the
split itself (not a standalone pass): executors fuse it into the first
butterfly stage of the cross transform, which is what makes the
decomposition overhead-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import PlanError

__all__ = ["Plan", "leaf", "split", "hierarchical_plan", "balanced_plan",
           "plan_for_machine_shape"]


@dataclass(frozen=True)
class Plan:
    """A (possibly recursive) NTT decomposition for one transform size.

    Attributes
    ----------
    size:
        Transform size this plan computes; a power of two.
    outer:
        Plan for the R-point cross-unit transform, or ``None`` for a
        leaf (executed directly with a radix-2/4 kernel).
    inner:
        Plan for the C-point local transform, or ``None`` for a leaf.
    level:
        Name of the hierarchy level whose fabric carries the cross
        transform's butterflies (cost-model attribution); empty for
        leaves.
    """

    size: int
    outer: "Plan | None" = None
    inner: "Plan | None" = None
    level: str = ""

    def __post_init__(self) -> None:
        if self.size < 1 or self.size & (self.size - 1):
            raise PlanError(f"plan size must be a power of two, got {self.size}")
        if (self.outer is None) != (self.inner is None):
            raise PlanError("a split needs both an outer and an inner plan")
        if self.outer is not None and self.inner is not None:
            if self.outer.size * self.inner.size != self.size:
                raise PlanError(
                    f"split {self.outer.size} x {self.inner.size} does not "
                    f"factor size {self.size}")
            if self.outer.size < 2 or self.inner.size < 2:
                raise PlanError("split factors must both be at least 2")

    # -- structure ---------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.outer is None

    @property
    def radix(self) -> tuple[int, int]:
        """The (R, C) factor pair of this node; (size, 1) for leaves."""
        if self.is_leaf:
            return (self.size, 1)
        assert self.outer is not None and self.inner is not None
        return (self.outer.size, self.inner.size)

    def depth(self) -> int:
        """Number of split levels below (and including) this node."""
        if self.is_leaf:
            return 0
        assert self.outer is not None and self.inner is not None
        return 1 + max(self.outer.depth(), self.inner.depth())

    def walk(self) -> Iterator["Plan"]:
        """Pre-order traversal of all nodes."""
        yield self
        if not self.is_leaf:
            assert self.outer is not None and self.inner is not None
            yield from self.outer.walk()
            yield from self.inner.walk()

    def levels_used(self) -> list[str]:
        """Hierarchy levels referenced by splits, outermost first."""
        return [node.level for node in self.walk() if not node.is_leaf]

    def describe(self, indent: int = 0) -> str:
        """Human-readable tree rendering for logs and examples."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}leaf[{self.size}]"
        assert self.outer is not None and self.inner is not None
        label = f" @{self.level}" if self.level else ""
        return "\n".join([
            f"{pad}split[{self.size} = {self.outer.size} x "
            f"{self.inner.size}]{label}",
            self.outer.describe(indent + 1),
            self.inner.describe(indent + 1),
        ])


def leaf(size: int) -> Plan:
    """A leaf plan: transform executed directly by a dense kernel."""
    return Plan(size=size)


def split(outer: Plan, inner: Plan, level: str = "") -> Plan:
    """Combine an R-plan (cross) and a C-plan (local) into an R*C plan."""
    return Plan(size=outer.size * inner.size, outer=outer, inner=inner,
                level=level)


def balanced_plan(size: int, leaf_size: int = 1 << 10,
                  level: str = "") -> Plan:
    """Recursively halve (in log space) until pieces fit ``leaf_size``.

    The generic planner for a single memory space: mimics a blocked
    out-of-core NTT where ``leaf_size`` is the capacity of the faster
    memory.
    """
    if size < 1 or size & (size - 1):
        raise PlanError(f"plan size must be a power of two, got {size}")
    if leaf_size < 2:
        raise PlanError(f"leaf_size must be at least 2, got {leaf_size}")
    if size <= leaf_size:
        return leaf(size)
    log_n = size.bit_length() - 1
    outer_log = log_n // 2
    outer = balanced_plan(1 << outer_log, leaf_size, level)
    inner = balanced_plan(1 << (log_n - outer_log), leaf_size, level)
    return split(outer, inner, level=level)


def hierarchical_plan(size: int, fanouts: Sequence[tuple[str, int]],
                      leaf_size: int = 1 << 10) -> Plan:
    """Build the UniNTT plan for a machine hierarchy.

    ``fanouts`` lists the hierarchy outermost-first as (level name,
    unit count) pairs, e.g. ``[("multi-gpu", 8), ("gpu", 64),
    ("block", 32), ("warp", 32)]``.  Each level contributes one split
    whose cross transform has exactly that level's fanout, so the level's
    fabric carries a fanout-point NTT — the "same computation at a
    different scale" property.  Whatever remains after all levels is
    handled by a balanced local plan with ``leaf_size`` leaves.

    Levels whose fanout exceeds the remaining size are skipped (a small
    transform may not need the outer levels at all).
    """
    if size < 1 or size & (size - 1):
        raise PlanError(f"plan size must be a power of two, got {size}")
    for name, fanout in fanouts:
        if fanout < 1 or fanout & (fanout - 1):
            raise PlanError(
                f"level {name!r} fanout must be a power of two, got {fanout}")
    remaining = size
    splits: list[tuple[str, int]] = []
    for name, fanout in fanouts:
        if fanout >= 2 and remaining // fanout >= 2:
            splits.append((name, fanout))
            remaining //= fanout
    plan = balanced_plan(remaining, leaf_size=leaf_size) \
        if remaining > 1 else leaf(1)
    if remaining == 1:
        # Degenerate: hierarchy fanouts consume the whole transform; fold
        # the innermost level back into the local plan.
        if not splits:
            return leaf(size)
        name, fanout = splits.pop()
        plan = leaf(fanout)
    for name, fanout in reversed(splits):
        plan = split(leaf(fanout), plan, level=name)
    return plan


def plan_for_machine_shape(size: int, gpu_count: int,
                           sm_per_gpu: int = 64,
                           warps_per_block: int = 8,
                           lanes_per_warp: int = 32,
                           leaf_size: int = 1 << 10) -> Plan:
    """Convenience wrapper: the standard 4-level GPU-node hierarchy."""
    return hierarchical_plan(size, [
        ("multi-gpu", gpu_count),
        ("gpu", sm_per_gpu),
        ("block", warps_per_block),
        ("warp", lanes_per_warp),
    ], leaf_size=leaf_size)
