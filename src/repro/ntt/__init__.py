"""NTT algorithm library: kernels, decompositions, and the UniNTT planner."""

from repro.ntt.batch import BatchTransform, batch_intt, batch_ntt
from repro.ntt.bluestein import bluestein_intt, bluestein_ntt
from repro.ntt.montgomery_ntt import MontgomeryNTT
from repro.ntt.coset import (
    coset_intt, coset_ntt, negacyclic_intt, negacyclic_ntt, negacyclic_shift,
)
from repro.ntt.fourstep import (
    four_step_intt, four_step_ntt, six_step_ntt, split_size, transpose_flat,
)
from repro.ntt.plan import (
    Plan, balanced_plan, hierarchical_plan, leaf, plan_for_machine_shape,
    split,
)
from repro.ntt.polymul import (
    cyclic_convolution, negacyclic_convolution, next_power_of_two,
    poly_multiply,
)
from repro.ntt.radix2 import (
    apply_bit_reversal, intt, ntt, ntt_dif_inplace, ntt_dit_inplace,
    radix2_butterfly_count,
)
from repro.ntt.radix4 import intt_radix4, ntt_radix4, radix4_multiply_count
from repro.ntt.recursive import (
    execute_plan, execute_plan_inverse, plan_intt, plan_ntt,
)
from repro.ntt.stockham import intt_stockham, ntt_stockham
from repro.ntt.reference import (
    dft, idft, naive_cyclic_convolution, naive_negacyclic_convolution,
)
from repro.ntt.twiddle import (
    TwiddleCache, bit_reverse, bit_reverse_permutation, default_cache,
)

__all__ = [
    "ntt", "intt", "ntt_dit_inplace", "ntt_dif_inplace", "apply_bit_reversal",
    "radix2_butterfly_count",
    "ntt_radix4", "intt_radix4", "radix4_multiply_count",
    "ntt_stockham", "intt_stockham",
    "bluestein_ntt", "bluestein_intt",
    "MontgomeryNTT",
    "four_step_ntt", "four_step_intt", "six_step_ntt", "split_size",
    "transpose_flat",
    "Plan", "leaf", "split", "balanced_plan", "hierarchical_plan",
    "plan_for_machine_shape",
    "execute_plan", "execute_plan_inverse", "plan_ntt", "plan_intt",
    "coset_ntt", "coset_intt", "negacyclic_ntt", "negacyclic_intt",
    "negacyclic_shift",
    "batch_ntt", "batch_intt", "BatchTransform",
    "cyclic_convolution", "negacyclic_convolution", "poly_multiply",
    "next_power_of_two",
    "dft", "idft", "naive_cyclic_convolution", "naive_negacyclic_convolution",
    "TwiddleCache", "default_cache", "bit_reverse", "bit_reverse_permutation",
]
