"""Pricing decomposition plans against the abstract hierarchy.

The uniform cost formula behind the paper's methodology: a split node
with cross-factor R that rides level ℓ exchanges ``(R-1)/R`` of its data
through ℓ's fabric exactly once (UniNTT's one-exchange property), every
butterfly costs one multiply, and leaf transforms stream through the
innermost memory.  Because the formula mentions only the level's
*parameters* — never its identity — one function prices a plan on any
machine, which is what lets :func:`repro.multigpu.autotune.machine_plan`
compare decomposition shapes.

The per-level byte counts produced here are the closed forms the
functional simulator reproduces (asserted in the test suite for the
multi-GPU level via the engines, and structurally for inner levels via
the uniformity harness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field

from repro.errors import PlanError
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel, field_limbs
from repro.hw.model import MachineModel
from repro.ntt.plan import Plan

__all__ = ["PlanCost", "price_plan", "price_schedule", "schedule_steps",
           "schedule_seconds"]


@dataclass
class PlanCost:
    """Per-level charges and the modeled total for one plan execution."""

    total_s: float
    compute_s: float
    exchange_s_by_level: dict[str, float] = dataclass_field(
        default_factory=dict)
    exchange_bytes_by_level: dict[str, int] = dataclass_field(
        default_factory=dict)
    butterfly_muls: int = 0

    @property
    def exchange_s(self) -> float:
        return sum(self.exchange_s_by_level.values())

    def dominant_level(self) -> str:
        """The hierarchy level the plan spends the most exchange time on."""
        if not self.exchange_s_by_level:
            return "none"
        return max(self.exchange_s_by_level,
                   key=self.exchange_s_by_level.get)  # type: ignore

    def validate(self) -> list[str]:
        """Check the cost-model invariants; return the violations.

        A healthy cost is made of finite, non-negative charges whose
        total is the sum of compute and exchange time.  A NaN seeping
        out of a bandwidth table, a negative byte count from an
        accounting bug, or a total that drifted from its parts all
        invalidate every comparison built on top — so the plan verifier
        runs this on every priced configuration.  An empty list means
        the cost is sound.
        """
        problems: list[str] = []

        def bad_number(value: float) -> bool:
            return not math.isfinite(value) or value < 0

        if bad_number(self.total_s):
            problems.append(f"total_s is {self.total_s!r}")
        if bad_number(self.compute_s):
            problems.append(f"compute_s is {self.compute_s!r}")
        for name in sorted(self.exchange_s_by_level):
            if bad_number(self.exchange_s_by_level[name]):
                problems.append(
                    f"exchange_s_by_level[{name!r}] is "
                    f"{self.exchange_s_by_level[name]!r}")
        for name in sorted(self.exchange_bytes_by_level):
            if self.exchange_bytes_by_level[name] < 0:
                problems.append(
                    f"exchange_bytes_by_level[{name!r}] is "
                    f"{self.exchange_bytes_by_level[name]}")
        if self.butterfly_muls < 0:
            problems.append(f"butterfly_muls is {self.butterfly_muls}")
        if not problems:
            parts = self.compute_s + self.exchange_s
            if not math.isclose(self.total_s, parts,
                                rel_tol=1e-9, abs_tol=1e-15):
                problems.append(
                    f"total_s {self.total_s!r} != compute_s + exchange_s "
                    f"{parts!r}")
        return problems


def price_plan(machine: MachineModel, field: PrimeField,
               plan: Plan) -> PlanCost:
    """Price one execution of ``plan`` on ``machine``.

    Every split node tagged with a hierarchy level charges one exchange
    of ``(R-1)/R`` of the *whole transform's* data at that level (all
    instances of the node run concurrently across the level's units, so
    per-unit time uses per-unit bytes).  Untagged splits and leaves
    charge compute only.
    """
    model = CostModel(machine, field)
    element_bytes = field_limbs(field) * 8
    n = plan.size
    level_names = {spec.name for spec in machine.levels(element_bytes)}

    exchange_bytes: dict[str, int] = {}
    exchange_seconds: dict[str, float] = {}
    messages: dict[str, int] = {}

    def visit(node: Plan, units_above: int) -> None:
        """Accumulate exchange charges; ``units_above`` is the product
        of the cross factors of tagged ancestors on the path."""
        if node.is_leaf:
            return
        child_units = units_above
        if node.level:
            if node.level not in level_names:
                raise PlanError(
                    f"plan references level {node.level!r} which "
                    f"{machine.name} does not have")
            r = node.radix[0]
            # Each of this level's units holds n / (units_above * r)
            # elements and exchanges the (r-1)/r remote fraction once.
            per_unit = n // (units_above * r)
            nbytes = per_unit * (r - 1) // r * element_bytes
            exchange_bytes[node.level] = (
                exchange_bytes.get(node.level, 0) + nbytes)
            messages[node.level] = messages.get(node.level, 0) + (r - 1)
            child_units = units_above * r
        assert node.outer is not None and node.inner is not None
        visit(node.outer, child_units)
        visit(node.inner, child_units)

    visit(plan, 1)

    for name, nbytes in exchange_bytes.items():
        exchange_seconds[name] = model.exchange_seconds(
            nbytes, name, messages=messages[name])

    # Compute: n/2 log2 n butterflies plus one twiddle scaling per split.
    log_n = n.bit_length() - 1
    split_count = sum(1 for node in plan.walk()
                      if not node.is_leaf)
    muls = (n // 2) * log_n + split_count * n
    # Work spreads across every unit of the machine.
    units = machine.gpu_count
    compute = model.compute_seconds(muls // max(units, 1))

    total = compute + sum(exchange_seconds.values())
    return PlanCost(total_s=total, compute_s=compute,
                    exchange_s_by_level=exchange_seconds,
                    exchange_bytes_by_level=exchange_bytes,
                    butterfly_muls=muls)


# ---------------------------------------------------------------------------
# Pricing symbolic schedules (the pass framework's cost oracle)
# ---------------------------------------------------------------------------

def _op_phase(op, num_gpus: int):
    """One schedule op as a per-GPU :class:`~repro.hw.cost.Phase`.

    Collectives charge the *critical-path* GPU: the largest of any
    GPU's sent or received bytes (all units move concurrently), with
    one latency hit per message on the busiest sender.
    """
    from repro.hw.cost import Phase
    from repro.multigpu.schedule import ExchangeOp, LocalOp, PairwiseOp

    if isinstance(op, LocalOp):
        return Phase(name=op.name, field_muls=op.field_muls_per_gpu,
                     mem_bytes=op.mem_bytes_per_gpu)
    if isinstance(op, ExchangeOp):
        per_unit = 0
        msgs = 0
        if op.transfers:
            per_unit = max(max(op.sent_bytes_per_gpu(num_gpus)),
                           max(op.received_bytes_per_gpu(num_gpus)))
            out_degree: dict[int, int] = {}
            for t in op.transfers:
                out_degree[t.src] = out_degree.get(t.src, 0) + 1
            msgs = max(out_degree.values())
        return Phase(name=op.name, exchange_bytes=per_unit,
                     exchange_level=op.level,
                     exchange_pattern="alltoall", messages=msgs)
    assert isinstance(op, PairwiseOp)
    active = any(i != j for i, j in enumerate(op.partner_of))
    return Phase(name=op.name,
                 exchange_bytes=op.bytes_per_gpu if active else 0,
                 exchange_level=op.level, exchange_pattern="pairwise",
                 messages=1 if active else 0)


def schedule_steps(schedule) -> list:
    """A schedule as an ordered cost-model step list.

    Runs of ops chained by the ``pipelined`` flag (set by the
    pipeline-fusion pass) collapse into one
    :class:`~repro.hw.cost.PipelinedGroup`, priced as
    ``max(local side, exchange side)`` — the recv-copy-send overlap.
    """
    from repro.hw.cost import PipelinedGroup

    steps: list = []
    ops = list(schedule.ops)
    i = 0
    while i < len(ops):
        op = ops[i]
        phases = [_op_phase(op, schedule.num_gpus)]
        while getattr(op, "pipelined", False) and i + 1 < len(ops):
            i += 1
            op = ops[i]
            phases.append(_op_phase(op, schedule.num_gpus))
        if len(phases) > 1:
            steps.append(PipelinedGroup(
                name="+".join(p.name for p in phases),
                phases=tuple(phases)))
        else:
            steps.append(phases[0])
        i += 1
    return steps


def price_schedule(machine: MachineModel, field: PrimeField,
                   schedule) -> PlanCost:
    """Price one execution of a symbolic ``CommSchedule``.

    Sequential pricing — no overlap credit — so the result satisfies
    the :meth:`PlanCost.validate` identity ``total = compute +
    exchange`` and is comparable level-by-level against
    :func:`price_plan`.  Overlap-aware wall-clock lives in
    :func:`schedule_seconds`.
    """
    from repro.multigpu.schedule import LocalOp

    model = CostModel(machine, field)
    compute = 0.0
    exchange_seconds: dict[str, float] = {}
    exchange_bytes: dict[str, int] = {}
    for op in schedule.ops:
        phase = _op_phase(op, schedule.num_gpus)
        if isinstance(op, LocalOp):
            compute += max(model.compute_seconds(phase.field_muls),
                           model.memory_seconds(phase.mem_bytes))
            continue
        if phase.exchange_bytes or phase.messages:
            exchange_seconds[op.level] = (
                exchange_seconds.get(op.level, 0.0)
                + model.exchange_seconds(phase.exchange_bytes, op.level,
                                         phase.messages,
                                         phase.exchange_pattern))
            exchange_bytes[op.level] = (
                exchange_bytes.get(op.level, 0) + phase.exchange_bytes)
    total = compute + sum(exchange_seconds.values())
    return PlanCost(total_s=total, compute_s=compute,
                    exchange_s_by_level=exchange_seconds,
                    exchange_bytes_by_level=exchange_bytes,
                    butterfly_muls=schedule.total_field_muls())


def schedule_seconds(machine: MachineModel, field: PrimeField,
                     schedule) -> float:
    """Overlap-aware modeled wall-clock for one schedule execution.

    Unlike :func:`price_schedule`, pipelined chains are credited with
    their communication/computation overlap, so this is the number the
    autotuner ranks candidates by.
    """
    model = CostModel(machine, field)
    return model.estimate(schedule_steps(schedule)).total_s
