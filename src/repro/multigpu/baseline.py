"""The conventional multi-GPU NTT baseline: distributed four-step.

This is "state-of-the-art single-GPU NTT extended to multiple GPUs the
obvious way", the comparison point for the paper's headline speedup.
The natural-order input is block-distributed; the four-step structure
(:mod:`repro.ntt.fourstep`) is parallelized with **three all-to-all
transposes** plus a **standalone twiddle sweep**:

1. all-to-all: block rows -> column blocks (columns become local);
2. local column transforms (size R);
3. twiddle pass (a full extra read+write of every shard);
4. all-to-all: back to row blocks;
5. local row transforms (size C);
6. all-to-all: final transpose into natural block order.

Every step is synchronous (no overlap), and both the input and the
output are natural order — exactly the contract a drop-in replacement
of a single-GPU library call must honour, which is why existing
implementations look like this.
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.hw.cost import Phase, Step
from repro.multigpu import accounting as acct
from repro.multigpu.base import (
    DistributedNTTEngine, DistributedVector, redistribute,
)
from repro.multigpu.layout import (
    BlockLayout, ColumnBlockLayout, Layout, TransposedBlockLayout,
)
from repro.ntt import radix2
from repro.ntt.fourstep import split_size
from repro.ntt.twiddle import default_cache
from repro.sim.cluster import SimCluster
from repro.sim.trace import TraceEvent

__all__ = ["BaselineFourStepEngine"]


class BaselineFourStepEngine(DistributedNTTEngine):
    """Three-transpose distributed four-step NTT (the baseline)."""

    name = "baseline-fourstep"

    def __init__(self, cluster: SimCluster, tile: int = 4096):
        super().__init__(cluster, tile)

    # -- layouts -----------------------------------------------------------

    def input_layout(self, n: int) -> Layout:
        return BlockLayout(n=n, gpu_count=self.gpu_count)

    def output_layout(self, n: int) -> Layout:
        return BlockLayout(n=n, gpu_count=self.gpu_count)

    def _factor(self, n: int) -> tuple[int, int]:
        rows, cols = split_size(n)
        g = self.gpu_count
        if rows % g or cols % g:
            raise PartitionError(
                f"baseline needs both factors of {n} = {rows}x{cols} "
                f"divisible by {g} GPUs (n >= {g * g * 4} suffices)")
        return rows, cols

    # -- functional ------------------------------------------------------------

    def _run(self, vec: DistributedVector, inverse: bool) -> DistributedVector:
        n = vec.n
        self._check_input(vec, self.input_layout(n))
        g = self.gpu_count
        rows, cols = self._factor(n)
        p = self.field.modulus
        field = self.field
        root = field.root_of_unity(n)
        if inverse:
            root = field.inv(root)
        cluster = self.cluster
        eb = cluster.element_bytes
        m = n // g

        block = BlockLayout(n=n, gpu_count=g)
        col_block = ColumnBlockLayout(n=n, gpu_count=g, rows=rows, cols=cols)
        transposed = TransposedBlockLayout(n=n, gpu_count=g, rows=rows,
                                           cols=cols)

        # 1. transpose: columns become local.
        redistribute(cluster, block, col_block, detail="baseline-T1")

        # 2. local column transforms of size `rows` with root w^cols.
        root_r = pow(root, cols, p)
        cols_per_gpu = cols // g
        for gpu in cluster.gpus:
            shard = gpu.shard
            for c_local in range(cols_per_gpu):
                base = c_local * rows
                shard[base:base + rows] = radix2.ntt(
                    field, shard[base:base + rows], default_cache,
                    root=root_r)
        self._charge_local(acct.small_batch_ntt_muls(cols_per_gpu, rows),
                           2 * m * eb * acct.tile_passes(rows, self.tile),
                           detail="baseline-colntt")

        # 3. standalone twiddle sweep: Y[k1][c] *= root^(c*k1); the
        #    inverse run folds the 1/n scaling into the same factors.
        n_inv = field.inv(n % p) if inverse else 1
        for gpu in cluster.gpus:
            shard = gpu.shard
            for c_local in range(cols_per_gpu):
                c = gpu.gpu_id * cols_per_gpu + c_local
                w_c = pow(root, c, p)
                factor = n_inv
                base = c_local * rows
                for k1 in range(rows):
                    shard[base + k1] = shard[base + k1] * factor % p
                    factor = factor * w_c % p
        self._charge_local(acct.twiddle_muls(m),
                           acct.pointwise_mem_bytes(m, eb),
                           detail="baseline-twiddle")

        # 4. transpose back: rows of Y become local.
        redistribute(cluster, col_block, block, detail="baseline-T2")

        # 5. local row transforms of size `cols` with root w^rows.
        root_c = pow(root, rows, p)
        rows_per_gpu = rows // g
        for gpu in cluster.gpus:
            shard = gpu.shard
            for r_local in range(rows_per_gpu):
                base = r_local * cols
                shard[base:base + cols] = radix2.ntt(
                    field, shard[base:base + cols], default_cache,
                    root=root_c)
        self._charge_local(acct.small_batch_ntt_muls(rows_per_gpu, cols),
                           2 * m * eb * acct.tile_passes(cols, self.tile),
                           detail="baseline-rowntt")

        # 6. final transpose into natural block order.
        redistribute(cluster, block, transposed, detail="baseline-T3")
        return DistributedVector(cluster=cluster, layout=block)

    def forward(self, vec: DistributedVector) -> DistributedVector:
        return self._run(vec, inverse=False)

    def inverse(self, vec: DistributedVector) -> DistributedVector:
        return self._run(vec, inverse=True)

    def _charge_local(self, muls: int, mem_bytes: int, detail: str) -> None:
        for gpu in self.cluster.gpus:
            gpu.charge_compute(muls, mem_bytes)
        self.cluster.trace.record(TraceEvent(
            kind="local-compute", level="gpu",
            max_bytes_per_gpu=mem_bytes,
            total_bytes=mem_bytes * self.gpu_count,
            field_muls=muls * self.gpu_count, detail=detail))

    # -- analytic ----------------------------------------------------------------

    def forward_profile(self, n: int) -> list[Step]:
        g = self.gpu_count
        eb = self.cluster.element_bytes
        rows, cols = self._factor(n)
        m = n // g
        a2a = acct.alltoall_bytes_per_gpu(m, g, eb)
        return [
            Phase(name="transpose-1", exchange_bytes=a2a, messages=g - 1),
            Phase(name="col-ntt",
                  field_muls=acct.small_batch_ntt_muls(cols // g, rows),
                  mem_bytes=2 * m * eb * acct.tile_passes(rows, self.tile)),
            Phase(name="twiddle-pass", field_muls=acct.twiddle_muls(m),
                  mem_bytes=acct.pointwise_mem_bytes(m, eb)),
            Phase(name="transpose-2", exchange_bytes=a2a, messages=g - 1),
            Phase(name="row-ntt",
                  field_muls=acct.small_batch_ntt_muls(rows // g, cols),
                  mem_bytes=2 * m * eb * acct.tile_passes(cols, self.tile)),
            Phase(name="transpose-3", exchange_bytes=a2a, messages=g - 1),
        ]
