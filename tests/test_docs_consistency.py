"""Docs/code consistency checks.

Two cheap guards that keep the documentation honest:

* the doctests embedded in the field-layer modules must run and pass
  (so the examples in the backend guide stay executable), and
* every experiment id the CLI accepts must be documented in
  ``docs/REPRODUCING.md`` (so ``repro experiment <id>`` is always
  discoverable from the docs).
"""

import doctest
import os

import pytest

DOCS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "docs")


@pytest.mark.parametrize("module_name", [
    "repro.field.backend",
    "repro.field.vector",
    "repro.field.limbgen",
])
def test_field_doctests(module_name):
    import importlib

    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctests"
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}")


def test_every_experiment_id_is_documented():
    from repro.cli import EXPERIMENTS

    path = os.path.join(DOCS, "REPRODUCING.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    missing = [exp_id for exp_id in EXPERIMENTS if f"`{exp_id}`" not in text]
    assert not missing, (
        f"experiment ids {missing} are accepted by the CLI but not "
        f"documented in docs/REPRODUCING.md")


def test_backends_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "BACKENDS.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("FieldBackend", "PythonBackend", "NumPyBackend",
                   "REPRO_BACKEND", "Montgomery", "Goldilocks"):
        assert needle in text, f"docs/BACKENDS.md does not mention {needle}"


def test_fields_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "FIELDS.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("MultiLimbBackend", "LimbSchedule", "generate_schedule",
                   "emit_montmul_source", "CIOS", "Barrett",
                   "REPRO_BACKEND=multilimb", "host_values",
                   "butterfly_stage", "max_lazy_stages",
                   "lint.pow-inverse", "f23"):
        assert needle in text, f"docs/FIELDS.md does not mention {needle}"


def test_fields_guide_schedule_numbers_match_codegen():
    # The worked example in FIELDS.md quotes the derived BN254-Fr
    # schedule; if the codegen ever picks different numbers the doc
    # must be rewritten, not silently left stale.
    from repro.field import BN254_FR, BLS12_381_FR
    from repro.field.limbgen import generate_schedule

    path = os.path.join(DOCS, "FIELDS.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for field in (BN254_FR, BLS12_381_FR):
        sched = generate_schedule(field.modulus)
        assert sched.fmt in text, (
            f"docs/FIELDS.md does not mention the {field.name} "
            f"schedule format {sched.fmt}")
    sched = generate_schedule(BN254_FR.modulus)
    assert f"R = 2^{sched.limb_bits * sched.limbs}" in text
    assert f"n' = {sched.n_prime:#x}" in text


def test_fields_guide_is_cross_linked():
    import re

    root = os.path.dirname(DOCS)
    for name in (os.path.join(root, "README.md"),
                 os.path.join(DOCS, "API.md"),
                 os.path.join(DOCS, "BACKENDS.md"),
                 os.path.join(DOCS, "REPRODUCING.md"),
                 os.path.join(DOCS, "ANALYSIS.md")):
        with open(name, encoding="utf-8") as handle:
            assert re.search(r"FIELDS\.md", handle.read()), (
                f"{os.path.basename(name)} does not link to FIELDS.md")


def test_analysis_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "ANALYSIS.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("verify_schedule", "check_trace", "seed_bug",
                   "repro analyze plan", "repro analyze trace",
                   "repro analyze lint", "EVENT_KINDS", "Exit codes"):
        assert needle in text, f"docs/ANALYSIS.md does not mention {needle}"


def test_resilience_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "RESILIENCE.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("FaultPlan", "FaultInjector", "ResilientNTTEngine",
                   "RetryPolicy", "ResilienceReport", "checkpoint",
                   "reshard", "trace.unresolved-fault", "--resilient",
                   "f20"):
        assert needle in text, (
            f"docs/RESILIENCE.md does not mention {needle}")


def test_serving_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "SERVING.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("ProofServer", "ProofRequest", "AdmissionQueue",
                   "PlanCache", "TwiddleLedger", "ServeReport",
                   "WorkloadSpec", "VirtualClock", "zero recompute",
                   "repro serve", "f21",
                   "trace.serve-dangling-dispatch"):
        assert needle in text, f"docs/SERVING.md does not mention {needle}"


def test_every_serve_trace_kind_is_documented():
    from repro.sim.trace import EVENT_KINDS

    path = os.path.join(DOCS, "SERVING.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    serve_kinds = [kind for kind in EVENT_KINDS
                   if kind.startswith("serve-")]
    assert serve_kinds, "no serve-level trace kinds are registered"
    missing = [kind for kind in serve_kinds if f"`{kind}`" not in text]
    assert not missing, (
        f"serve trace kinds {missing} are registered but not documented "
        f"in docs/SERVING.md")


def test_serving_guide_is_cross_linked():
    import re

    root = os.path.dirname(DOCS)
    for name in (os.path.join(root, "README.md"),
                 os.path.join(DOCS, "API.md"),
                 os.path.join(DOCS, "REPRODUCING.md"),
                 os.path.join(DOCS, "ANALYSIS.md")):
        with open(name, encoding="utf-8") as handle:
            assert re.search(r"SERVING\.md", handle.read()), (
                f"{os.path.basename(name)} does not link to SERVING.md")


def test_durability_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "DURABILITY.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("WriteAheadJournal", "ServerSnapshot",
                   "RecoveryManager", "serve_durably", "DegradePolicy",
                   "CircuitBreaker", "ServerCrashError",
                   "exactly once", "bit-identical", "`server-crash@",
                   "--crash", "--recover", "--degrade", "f22"):
        assert needle in text, (
            f"docs/DURABILITY.md does not mention {needle}")


def test_every_journal_kind_is_documented():
    from repro.serve import JOURNAL_KINDS

    path = os.path.join(DOCS, "DURABILITY.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    missing = [kind for kind in JOURNAL_KINDS if f"`{kind}`" not in text]
    assert not missing, (
        f"journal record kinds {missing} are appendable but not "
        f"documented in docs/DURABILITY.md")


def test_durability_guide_is_cross_linked():
    import re

    root = os.path.dirname(DOCS)
    for name in (os.path.join(root, "README.md"),
                 os.path.join(DOCS, "API.md"),
                 os.path.join(DOCS, "SERVING.md"),
                 os.path.join(DOCS, "RESILIENCE.md"),
                 os.path.join(DOCS, "REPRODUCING.md"),
                 os.path.join(DOCS, "ANALYSIS.md")):
        with open(name, encoding="utf-8") as handle:
            assert re.search(r"DURABILITY\.md", handle.read()), (
                f"{os.path.basename(name)} does not link to "
                "DURABILITY.md")


def test_every_fault_kind_is_documented():
    from repro.sim.faults import FAULT_KINDS

    path = os.path.join(DOCS, "RESILIENCE.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    missing = [kind for kind in FAULT_KINDS if f"`{kind}`" not in text]
    assert not missing, (
        f"fault kinds {missing} are injectable but not documented in "
        f"docs/RESILIENCE.md")


def test_schedules_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "SCHEDULES.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("merge-local-ops", "dead-op-elimination",
                   "pipeline-fusion", "run_passes", "verify_rewrite",
                   "ScheduleDelta", "synthesize_hierarchical",
                   "route_via", "split_exchange", "interpret_schedule",
                   "select_schedule", "repro analyze optimize",
                   "plan.rewrite-differs", "f24"):
        assert needle in text, (
            f"docs/SCHEDULES.md does not mention {needle}")


def test_every_seed_bug_kind_is_documented():
    from repro.analysis.plancheck import SEED_BUGS

    path = os.path.join(DOCS, "ANALYSIS.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    missing = [kind for kind in SEED_BUGS if f"`{kind}`" not in text]
    assert not missing, (
        f"seed-bug kinds {missing} are injectable but not documented "
        f"in docs/ANALYSIS.md")


def test_every_default_pass_is_documented():
    from repro.analysis.passes import DEFAULT_PASSES

    for doc in ("ANALYSIS.md", "SCHEDULES.md"):
        path = os.path.join(DOCS, doc)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        missing = [p.name for p in DEFAULT_PASSES
                   if f"`{p.name}`" not in text]
        assert not missing, (
            f"schedule passes {missing} are registered but not "
            f"documented in docs/{doc}")


def test_schedules_guide_is_cross_linked():
    import re

    root = os.path.dirname(DOCS)
    for name in (os.path.join(root, "README.md"),
                 os.path.join(DOCS, "API.md"),
                 os.path.join(DOCS, "REPRODUCING.md"),
                 os.path.join(DOCS, "ANALYSIS.md")):
        with open(name, encoding="utf-8") as handle:
            assert re.search(r"SCHEDULES\.md", handle.read()), (
                f"{os.path.basename(name)} does not link to "
                "SCHEDULES.md")


def test_every_analysis_check_is_documented():
    from repro.analysis import all_checks

    path = os.path.join(DOCS, "ANALYSIS.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    missing = [check.check_id for check in all_checks()
               if f"`{check.check_id}`" not in text]
    assert not missing, (
        f"analysis checks {missing} are registered but not documented "
        f"in docs/ANALYSIS.md")


def test_fleet_guide_exists_and_covers_api():
    path = os.path.join(DOCS, "FLEET.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for needle in ("FleetServer", "FleetPolicy", "FleetReport",
                   "ConsistentHashRouter", "WeightedFairQueue",
                   "VirtualClock", "EventLoop", "SharedCounter",
                   "suspect_phi", "failover_phi", "replay_journal",
                   "exactly once", "bit-identical", "--replicas",
                   "f25", "trace.unresolved-suspicion",
                   "trace.duplicate-complete", "lint.wall-clock"):
        assert needle in text, f"docs/FLEET.md does not mention {needle}"


def test_every_fleet_fault_kind_is_documented_in_fleet_md():
    from repro.sim.faults import FLEET_KINDS

    path = os.path.join(DOCS, "FLEET.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    missing = [kind for kind in sorted(FLEET_KINDS)
               if f"`{kind}`" not in text]
    assert not missing, (
        f"fleet fault kinds {missing} are consumed by FleetServer but "
        f"not documented in docs/FLEET.md")


def test_every_fleet_trace_kind_is_documented_in_fleet_md():
    path = os.path.join(DOCS, "FLEET.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    for kind in ("serve-route", "serve-heartbeat", "serve-failover",
                 "serve-steal"):
        assert f"`{kind}`" in text, (
            f"fleet trace kind {kind} is not documented in docs/FLEET.md")


def test_fleet_guide_is_cross_linked():
    import re

    root = os.path.dirname(DOCS)
    for name in (os.path.join(root, "README.md"),
                 os.path.join(DOCS, "API.md"),
                 os.path.join(DOCS, "SERVING.md"),
                 os.path.join(DOCS, "DURABILITY.md"),
                 os.path.join(DOCS, "RESILIENCE.md"),
                 os.path.join(DOCS, "ANALYSIS.md"),
                 os.path.join(DOCS, "REPRODUCING.md")):
        with open(name, encoding="utf-8") as handle:
            assert re.search(r"FLEET\.md", handle.read()), (
                f"{os.path.basename(name)} does not link to FLEET.md")
