"""Abstract hardware model, machine presets, and the analytic cost model."""

from repro.hw.cost import (
    CostBreakdown, CostModel, Phase, PipelinedGroup, field_limbs,
)
from repro.hw.machines import (
    A100_GPU, A100_PCIE_NODE, ALL_MACHINES, DGX1_V100, DGX_A100, DGX_H100,
    H100_GPU, V100_GPU, machine_by_name,
)
from repro.hw.model import GpuSpec, LevelSpec, MachineModel
from repro.hw.multinode import (
    ALL_CLUSTERS, FOUR_NODE_DGX_A100, MultiNodeMachine, cluster_by_name,
)
from repro.hw.plancost import (
    PlanCost, price_plan, price_schedule, schedule_seconds, schedule_steps,
)
from repro.hw.serialize import (
    cluster_from_dict, cluster_to_dict, gpu_from_dict, gpu_to_dict,
    interconnect_from_dict, interconnect_to_dict, load_machine_file,
    machine_from_dict, machine_to_dict,
)
from repro.hw.topology import (
    Interconnect, infiniband, nvlink_ring, nvswitch, pcie_host_staged,
)

__all__ = [
    "LevelSpec", "GpuSpec", "MachineModel",
    "Interconnect", "nvswitch", "nvlink_ring", "pcie_host_staged",
    "infiniband",
    "MultiNodeMachine", "FOUR_NODE_DGX_A100", "ALL_CLUSTERS",
    "cluster_by_name",
    "V100_GPU", "A100_GPU", "H100_GPU",
    "DGX1_V100", "DGX_A100", "DGX_H100", "A100_PCIE_NODE",
    "ALL_MACHINES", "machine_by_name",
    "Phase", "PipelinedGroup", "CostModel", "CostBreakdown", "field_limbs",
    "PlanCost", "price_plan", "price_schedule", "schedule_seconds",
    "schedule_steps",
    "gpu_to_dict", "gpu_from_dict", "interconnect_to_dict",
    "interconnect_from_dict", "machine_to_dict", "machine_from_dict",
    "cluster_to_dict", "cluster_from_dict", "load_machine_file",
]
