"""CLI surface of the analysis subsystem (``repro analyze ...``)."""

import json

import pytest

from repro.analysis.plancheck import SEED_BUGS
from repro.cli import build_parser, main


class TestAnalyzePlan:
    def test_clean_plan_exits_zero(self, capsys):
        assert main(["analyze", "plan", "--gpus", "4",
                     "--log-size", "10"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ablation_covers_grid(self, capsys):
        assert main(["analyze", "plan", "--gpus", "4", "--log-size",
                     "10", "--ablation"]) == 0
        out = capsys.readouterr().out
        assert "all-on" in out
        assert "all-off" in out

    def test_pairwise_engine(self, capsys):
        assert main(["analyze", "plan", "--engine", "pairwise",
                     "--gpus", "4", "--log-size", "10"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_drop_transfer_fails(self, capsys):
        # Acceptance criterion: the corrupted schedule is caught (both
        # the lost transfer and the stale read) and the exit code is
        # non-zero.
        code = main(["analyze", "plan", "--gpus", "4", "--log-size",
                     "10", "--seed-bug", "drop-transfer"])
        assert code != 0
        out = capsys.readouterr().out
        assert "plan.lost-transfer" in out
        assert "plan.read-before-write" in out

    @pytest.mark.parametrize("bug", sorted(SEED_BUGS))
    def test_every_seed_bug_fails(self, bug, capsys):
        engine = "pairwise" if bug == "deadlock" else "unintt"
        assert main(["analyze", "plan", "--engine", engine, "--gpus",
                     "4", "--log-size", "10", "--seed-bug", bug]) == 1
        capsys.readouterr()

    def test_json_output_parses(self, capsys):
        code = main(["analyze", "plan", "--gpus", "4", "--log-size",
                     "10", "--seed-bug", "drop-transfer", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "plan"
        assert payload["count"] == len(payload["findings"]) > 0
        checks = {finding["check"] for finding in payload["findings"]}
        assert "plan.lost-transfer" in checks

    def test_cli_seed_bug_choices_match_registry(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["analyze", "plan", "--seed-bug",
                               "not-a-bug"])
        for bug in SEED_BUGS:
            args = parser.parse_args(["analyze", "plan", "--seed-bug",
                                      bug])
            assert args.seed_bug == [bug]


class TestAnalyzeTrace:
    def test_clean_trace_exits_zero(self, capsys):
        assert main(["analyze", "trace", "--gpus", "4",
                     "--log-size", "9"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_pairwise_trace(self, capsys):
        assert main(["analyze", "trace", "--engine", "pairwise",
                     "--gpus", "4", "--log-size", "9"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["analyze", "trace", "--gpus", "4", "--log-size",
                     "9", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "findings": [], "tool": "trace"}


class TestAnalyzeLint:
    def test_src_repro_is_clean(self, capsys):
        assert main(["analyze", "lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_fail_with_paths(self, tmp_path, capsys):
        bad = tmp_path / "multigpu"
        bad.mkdir()
        (bad / "bad.py").write_text(
            "def f(items=[]):\n    return items\n")
        assert main(["analyze", "lint", str(bad / "bad.py")]) == 1
        assert "lint.mutable-default" in capsys.readouterr().out


class TestInfoListsChecks:
    def test_info_shows_analysis_checks(self, capsys):
        from repro.analysis import all_checks

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "analysis checks:" in out
        for check in all_checks():
            assert check.check_id in out


class TestAnalyzeOptimize:
    def test_cluster_run_is_clean_and_ranks(self, capsys):
        assert main(["analyze", "optimize", "--log-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "schedule candidates" in out
        assert "@hier[ns=8]" in out
        assert "<- selected" in out
        assert "clean" in out

    def test_single_node_machine_works_too(self, capsys):
        assert main(["analyze", "optimize", "--machine", "DGX-A100",
                     "--log-size", "12", "--field", "Goldilocks"]) == 0
        out = capsys.readouterr().out
        assert "@hier[" not in out
        assert "+passes" in out

    def test_json_output(self, capsys):
        assert main(["analyze", "optimize", "--log-size", "16",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "findings": [],
                           "tool": "optimize"}

    def test_unknown_machine_exits_two(self, capsys):
        assert main(["analyze", "optimize", "--machine", "TPU-pod",
                     "--log-size", "12"]) == 2
        capsys.readouterr()
