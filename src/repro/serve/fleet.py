"""Fleet-scale resilient serving: replicated, journaled proof servers.

One :class:`~repro.serve.scheduler.ProofServer` is crash-consistent
but still a single point of failure: while it recovers, goodput is
zero.  :class:`FleetServer` runs N journaled replicas on one shared
discrete-event runtime (:mod:`repro.runtime`) and keeps serving
through replica deaths, network partitions, and flapping heartbeats:

* **Routing** — a :class:`ConsistentHashRouter` places each request by
  its shape key ``(field, log_size, direction)`` so one replica's
  plan/twiddle caches stay hot for a shape, walking the hash ring's
  live successors and breaking ties least-loaded-first among a small
  candidate set.
* **Failure detection** — replicas heartbeat every
  ``heartbeat_interval_s`` of virtual time; the detector's suspicion
  level for a replica is phi-style, ``phi = missed ticks``.  Crossing
  ``suspect_phi`` emits a ``serve-heartbeat`` *suspect* transition;
  every suspicion must later resolve — one to one — into either a
  *recovered* transition (the heartbeats came back) or a
  ``serve-failover`` (they did not), which is exactly what the
  ``trace.unresolved-suspicion`` audit rule checks.
* **Journaled failover** — crossing ``failover_phi`` *fences* the
  replica (it will never emit again; any in-flight batch is
  discarded), replays its write-ahead journal with
  :func:`~repro.serve.durability.replay_journal` — the same replay
  single-server crash recovery runs — and re-admits the orphans onto
  surviving replicas exactly once.  A fenced replica that comes back
  (a healed partition, a returned heartbeat link) rejoins *empty*
  under a fresh journal: its old lease is gone, so it cannot
  double-emit work the fleet already failed over.
* **Work stealing** — an idle replica steals the least-urgent queued
  requests from the most-loaded one; the victim journals a ``steal``
  record (its replay drops the request without marking it handled) and
  the thief journals a fresh ``admit``, so failover of either side
  still settles every request exactly once.
* **QoS** — every replica queue is a
  :class:`~repro.serve.qos.WeightedFairQueue`, so per-tenant weighted
  fairness holds fleet-wide under overload.

Fleet faults come from the same :class:`~repro.sim.faults.FaultPlan`
vocabulary as fabric faults — ``replica-crash@tick:replica=R``,
``network-partition@tick:replica=R,count=C``,
``heartbeat-loss@tick:replica=R,count=C`` — keyed to the heartbeat
tick index, so a chaos plan is a pure function of the run and replays
bit-identically.

Everything the coordination layer does is priced: routing decisions,
heartbeats, failover replays, and steals each charge fabric messages
through the same memoized cost model the servers use, and
:meth:`FleetReport.plan_cost` folds replica costs plus fleet overhead
into one validating :class:`~repro.hw.plancost.PlanCost`.

Request outputs are pure functions of ``(data_seed, request_id,
lane)``, so *where* a request runs never changes *what* it returns:
a fleet run under chaos emits bit-identical outputs to an unfaulted
single server, which the chaos tests assert output-for-output.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
from dataclasses import dataclass, field as dataclass_field

from repro.errors import ServeError
from repro.field.presets import field_by_name
from repro.hw.cost import CostModel, Phase
from repro.hw.machines import DGX_A100
from repro.hw.model import MachineModel
from repro.hw.plancost import PlanCost
from repro.runtime.clock import VirtualClock
from repro.runtime.loop import EventLoop, SharedCounter
from repro.serve.durability import (
    REPLAY_MESSAGES_PER_RECORD, WriteAheadJournal, replay_journal,
)
from repro.serve.qos import WeightedFairQueue
from repro.serve.report import ServeReport, percentile
from repro.serve.request import ProofRequest, RequestResult
from repro.serve.scheduler import REJECT_MESSAGES, ProofServer
from repro.sim.faults import FLEET_KINDS, FaultPlan, FaultSpec
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "FAILOVER_MESSAGES", "HEARTBEAT_MESSAGES", "ROUTE_MESSAGES",
    "STEAL_MESSAGES", "ConsistentHashRouter", "FleetPolicy",
    "FleetReport", "FleetServer",
]

#: Fabric latency units one routing decision costs (the front door
#: hashes the key and forwards the request to its replica).
ROUTE_MESSAGES = 1

#: Fabric latency units one heartbeat costs (replica -> detector).
HEARTBEAT_MESSAGES = 1

#: Fabric latency units one stolen request costs (victim hand-off plus
#: thief re-admission; both sides journal).
STEAL_MESSAGES = 2

#: Fixed fabric latency units one failover costs (fence the lease,
#: open the victim's journal); each replayed record adds
#: :data:`~repro.serve.durability.REPLAY_MESSAGES_PER_RECORD` on top.
FAILOVER_MESSAGES = 8

# Event-loop priority classes at equal virtual timestamps: a batch
# completion commits before a simultaneous arrival is routed, and both
# land before the heartbeat tick inspects the fleet — so fencing at a
# tick never races a completion that (in virtual time) already
# happened.
_PRI_COMPLETE = 0
_PRI_ARRIVAL = 1
_PRI_HEARTBEAT = 2


def _hash64(text: str) -> int:
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:16], 16)


@dataclass(frozen=True)
class FleetPolicy:
    """Configuration of the replicated fleet's coordination layer.

    Attributes
    ----------
    replicas:
        Number of journaled server replicas.
    heartbeat_interval_s:
        Virtual seconds between heartbeat ticks; fleet faults key on
        the tick index.
    suspect_phi:
        Missed-tick suspicion threshold; crossing it emits a
        ``serve-heartbeat`` suspect transition.
    failover_phi:
        Missed-tick fencing threshold (strictly greater than
        ``suspect_phi``); crossing it fences the replica and replays
        its journal onto the survivors.
    vnodes:
        Virtual nodes per replica on the consistent-hash ring.
    spread:
        Candidate replicas considered per routing decision (the ring
        successor plus ``spread - 1`` alternates; least-loaded wins).
    steal_enabled / steal_threshold / steal_max:
        An idle replica steals up to ``steal_max`` least-urgent
        requests from a replica with at least ``steal_threshold``
        queued.
    tenant_weights:
        ``((tenant, weight), ...)`` pairs installed into every
        replica's :class:`~repro.serve.qos.WeightedFairQueue`.
    """

    replicas: int = 2
    heartbeat_interval_s: float = 5e-4
    suspect_phi: float = 2.0
    failover_phi: float = 4.0
    vnodes: int = 8
    spread: int = 2
    steal_enabled: bool = True
    steal_threshold: int = 4
    steal_max: int = 2
    tenant_weights: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {self.replicas}")
        if not (math.isfinite(self.heartbeat_interval_s)
                and self.heartbeat_interval_s > 0):
            raise ServeError(
                f"heartbeat_interval_s must be finite and > 0, "
                f"got {self.heartbeat_interval_s!r}")
        if not self.suspect_phi > 0:
            raise ServeError(
                f"suspect_phi must be > 0, got {self.suspect_phi}")
        if not self.failover_phi > self.suspect_phi:
            raise ServeError(
                f"failover_phi ({self.failover_phi}) must be strictly "
                f"greater than suspect_phi ({self.suspect_phi}): a "
                "fleet that fences on first suspicion flaps")
        if self.vnodes < 1:
            raise ServeError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.spread < 1:
            raise ServeError(f"spread must be >= 1, got {self.spread}")
        if self.steal_threshold < 2:
            raise ServeError(
                f"steal_threshold must be >= 2, got "
                f"{self.steal_threshold} (stealing the last queued "
                "request just moves the imbalance)")
        if self.steal_max < 1:
            raise ServeError(
                f"steal_max must be >= 1, got {self.steal_max}")
        for entry in self.tenant_weights:
            if (not isinstance(entry, tuple) or len(entry) != 2
                    or not isinstance(entry[0], str) or not entry[0]):
                raise ServeError(
                    f"tenant_weights entries must be (tenant, weight) "
                    f"pairs, got {entry!r}")
            if not entry[1] > 0:
                raise ServeError(
                    f"tenant {entry[0]!r}: weight must be > 0, "
                    f"got {entry[1]}")


class ConsistentHashRouter:
    """Shape-affine request placement on a consistent-hash ring.

    Each replica owns ``vnodes`` points on a 64-bit ring; a request's
    shape key hashes to a point and walks clockwise collecting the
    first ``spread`` *distinct live* replicas.  Among those candidates
    the least-loaded wins (ties break toward the ring successor).
    Hashing the shape — not the request id — keeps every shape pinned
    to a stable home replica, so plan and twiddle caches concentrate;
    the spread keeps a hot shape from melting one replica.
    """

    def __init__(self, replicas: int, vnodes: int = 8) -> None:
        if replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {replicas}")
        if vnodes < 1:
            raise ServeError(f"vnodes must be >= 1, got {vnodes}")
        self.replicas = replicas
        self.vnodes = vnodes
        ring = []
        for replica in range(replicas):
            for vnode in range(vnodes):
                ring.append((_hash64(f"replica={replica} vnode={vnode}"),
                             replica))
        ring.sort()
        self._ring = ring
        self._points = [point for point, _ in ring]

    @staticmethod
    def key_of(request: ProofRequest) -> tuple[str, int, str]:
        """The shape key routing hashes on."""
        return (request.field_name, request.log_size, request.direction)

    def candidates(self, key: tuple, alive: set[int],
                   spread: int) -> list[int]:
        """The first ``spread`` distinct live replicas clockwise."""
        if not alive:
            return []
        start = bisect.bisect_right(self._points, _hash64(repr(key)))
        seen: set[int] = set()
        out: list[int] = []
        for offset in range(len(self._ring)):
            _, replica = self._ring[(start + offset) % len(self._ring)]
            if replica in alive and replica not in seen:
                seen.add(replica)
                out.append(replica)
                if len(out) >= spread:
                    break
        return out

    def route(self, key: tuple, alive: set[int], spread: int,
              load) -> int:
        """Pick the replica for ``key``: least-loaded candidate.

        ``load`` maps a replica index to its current load (queue
        depth); ties keep ring order, i.e. prefer the primary.
        """
        candidates = self.candidates(key, alive, spread)
        if not candidates:
            raise ServeError("route with no live replicas")
        order = {replica: rank for rank, replica in enumerate(candidates)}
        return min(candidates, key=lambda r: (load(r), order[r]))


class _Replica:
    """One fleet member: a journaled server plus control-plane state."""

    def __init__(self, index: int, server: ProofServer,
                 queue: WeightedFairQueue) -> None:
        self.index = index
        self.server = server
        self.queue = queue
        self.report = ServeReport(machine_name=server.machine.name)
        self.handled: set[int] = set()
        # data plane
        self.alive = True                   # the process itself runs
        self.inflight = None                # InflightBatch between begin/commit
        self.completion_event = None
        self.epoch = 0                      # bumped whenever inflight is voided
        self.stalled: list[ProofRequest] = []   # batch parked by a partition
        self.orphaned = False               # journal holds unemitted dispatches
        # control plane
        self.fenced = False                 # lease revoked; never emits again
        self.partitioned = False
        self.partition_heal_tick = -1
        self.muted = False                  # heartbeats suppressed, still serves
        self.mute_heal_tick = -1
        self.last_beat_tick = 0
        self.suspected = False

    @property
    def serving(self) -> bool:
        """Can this replica run dispatches and journal right now?"""
        return self.alive and not self.fenced and not self.partitioned

    @property
    def member(self) -> bool:
        """Does the control plane still count this replica?"""
        return not self.fenced

    def void_inflight(self, loop: EventLoop) -> None:
        """Drop the in-flight batch (crash/partition/fence) unseen."""
        if self.completion_event is not None:
            loop.cancel(self.completion_event)
            self.completion_event = None
        self.inflight = None
        self.epoch += 1


@dataclass
class FleetReport:
    """The fleet run's complete account: replicas plus coordination.

    Per-replica :class:`~repro.serve.report.ServeReport` objects carry
    the serving-side numbers; the fleet layer adds routing, heartbeat,
    failover, and steal tallies with their priced overhead seconds,
    and the merged (exactly-once-checked) result list.
    """

    machine_name: str
    policy: FleetPolicy
    replica_reports: list[ServeReport] = dataclass_field(
        default_factory=list)
    offered: int = 0
    routed: int = 0
    unroutable: int = 0
    heartbeats: int = 0
    suspicions: int = 0
    detector_recoveries: int = 0
    failovers: int = 0
    failover_requests: int = 0
    replayed_records: int = 0
    deaths: int = 0
    partitions: int = 0
    heartbeat_losses: int = 0
    rejoins: int = 0
    steals: int = 0
    stolen_requests: int = 0
    route_s: float = 0.0
    heartbeat_s: float = 0.0
    failover_s: float = 0.0
    steal_s: float = 0.0
    makespan_s: float = 0.0
    results: list[RequestResult] = dataclass_field(default_factory=list)

    # -- aggregates ----------------------------------------------------------

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.replica_reports)

    @property
    def accepted(self) -> int:
        return sum(r.accepted for r in self.replica_reports)

    @property
    def rejected(self) -> int:
        return (sum(r.rejected for r in self.replica_reports)
                + self.unroutable)

    @property
    def shed(self) -> int:
        return sum(r.shed for r in self.replica_reports)

    @property
    def deadline_misses(self) -> int:
        return sum(r.deadline_misses for r in self.replica_reports)

    @property
    def overhead_s(self) -> float:
        """Coordination seconds the fleet layer itself charged."""
        return (self.route_s + self.heartbeat_s + self.failover_s
                + self.steal_s)

    def goodput_rps(self) -> float:
        """Completed requests per virtual second of fleet makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    def latency_percentiles_s(self) -> dict[str, float]:
        lats = sorted(r.latency_s for r in self.results)
        return {
            "max": lats[-1] if lats else 0.0,
            "p50": percentile(lats, 0.50),
            "p90": percentile(lats, 0.90),
            "p99": percentile(lats, 0.99),
        }

    def tenant_breakdown(self) -> dict[str, dict[str, object]]:
        """Fleet-wide per-tenant accounting (merged across replicas)."""
        by_tenant: dict[str, list[RequestResult]] = {}
        for result in self.results:
            by_tenant.setdefault(
                result.request.tenant_id, []).append(result)
        rejected: dict[str, int] = {}
        shed: dict[str, int] = {}
        for report in self.replica_reports:
            for tenant, count in report.rejected_by_tenant.items():
                rejected[tenant] = rejected.get(tenant, 0) + count
            for tenant, count in report.shed_by_tenant.items():
                shed[tenant] = shed.get(tenant, 0) + count
        breakdown: dict[str, dict[str, object]] = {}
        for tenant in sorted(set(by_tenant) | set(rejected) | set(shed)):
            results = by_tenant.get(tenant, [])
            lats = sorted(r.latency_s for r in results)
            breakdown[tenant] = {
                "completed": len(results),
                "deadline_misses": sum(
                    1 for r in results if not r.deadline_met),
                "p50_latency_s": percentile(lats, 0.50),
                "p99_latency_s": percentile(lats, 0.99),
                "rejected": rejected.get(tenant, 0),
                "shed": shed.get(tenant, 0),
                "vectors": sum(r.request.batch for r in results),
            }
        return breakdown

    # -- pricing -------------------------------------------------------------

    def plan_cost(self, machine: MachineModel) -> PlanCost:
        """Replica costs plus fleet coordination, one validating sum.

        Coordination traffic (routing, heartbeats, failover replay,
        steals) is pure fabric messaging, so — like the single
        server's journal overhead — it lands on the exchange side of
        the multi-GPU fabric level.
        """
        total = compute = 0.0
        seconds_by_level: dict[str, float] = {}
        bytes_by_level: dict[str, int] = {}
        for report in self.replica_reports:
            cost = report.plan_cost(machine)
            total += cost.total_s
            compute += cost.compute_s
            for level, seconds in cost.exchange_s_by_level.items():
                seconds_by_level[level] = \
                    seconds_by_level.get(level, 0.0) + seconds
            for level, nbytes in cost.exchange_bytes_by_level.items():
                bytes_by_level[level] = \
                    bytes_by_level.get(level, 0) + nbytes
        overhead = self.overhead_s
        if overhead:
            total += overhead
            seconds_by_level["multi-gpu"] = \
                seconds_by_level.get("multi-gpu", 0.0) + overhead
        return PlanCost(
            total_s=total, compute_s=compute,
            exchange_s_by_level=dict(sorted(seconds_by_level.items())),
            exchange_bytes_by_level=dict(sorted(bytes_by_level.items())))

    # -- serialization -------------------------------------------------------

    def summary(self) -> dict[str, object]:
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "deadline_misses": self.deadline_misses,
            "deaths": self.deaths,
            "detector_recoveries": self.detector_recoveries,
            "failover_requests": self.failover_requests,
            "failover_s": self.failover_s,
            "failovers": self.failovers,
            "goodput_rps": self.goodput_rps(),
            "heartbeat_losses": self.heartbeat_losses,
            "heartbeat_s": self.heartbeat_s,
            "heartbeats": self.heartbeats,
            "makespan_s": self.makespan_s,
            "offered": self.offered,
            "partitions": self.partitions,
            "rejected": self.rejected,
            "rejoins": self.rejoins,
            "replayed_records": self.replayed_records,
            "replicas": self.policy.replicas,
            "route_s": self.route_s,
            "routed": self.routed,
            "shed": self.shed,
            "steal_s": self.steal_s,
            "steals": self.steals,
            "stolen_requests": self.stolen_requests,
            "suspicions": self.suspicions,
            "unroutable": self.unroutable,
        }

    def to_json(self) -> str:
        payload = dict(self.summary())
        payload["latency_percentiles_s"] = self.latency_percentiles_s()
        payload["machine"] = self.machine_name
        payload["tenants"] = self.tenant_breakdown()
        payload["replica_summaries"] = [
            r.summary() for r in self.replica_reports]
        return json.dumps(payload, indent=2, sort_keys=True)


class FleetServer:
    """N journaled proof-server replicas behind one router and detector.

    Parameters mirror :class:`~repro.serve.scheduler.ProofServer`
    where they configure the per-replica servers; ``policy`` holds the
    fleet-level knobs and ``faults`` a plan of *fleet-kind* specs
    (``replica-crash`` / ``network-partition`` / ``heartbeat-loss``,
    keyed to heartbeat ticks).  Fabric faults belong on a single
    server's injector, not here — mixing the layers would make one
    replica's retry storm look like a fleet event.

    A ``FleetServer`` is one-shot like a journaled ``ProofServer``:
    build, :meth:`serve` once, read the :class:`FleetReport`.
    """

    def __init__(self, machine: MachineModel = DGX_A100, *,
                 policy: FleetPolicy | None = None,
                 faults: FaultPlan | None = None,
                 queue_capacity: int = 64,
                 max_batch_requests: int = 16,
                 batching: bool = True,
                 caching: bool = True,
                 strategy: str | None = None,
                 twiddle_capacity: int | None = None,
                 snapshot_every: int = 8) -> None:
        self.policy = policy if policy is not None else FleetPolicy()
        self.machine = machine
        self.max_batch_requests = max_batch_requests
        self.batching = batching
        self.queue_capacity = queue_capacity
        self._fault_ticks: dict[int, list[FaultSpec]] = {}
        if faults is not None:
            alien = [f for f in faults.faults if f.kind not in FLEET_KINDS]
            if alien:
                raise ServeError(
                    "FleetServer faults must be fleet kinds "
                    f"({', '.join(sorted(FLEET_KINDS))}); fabric faults "
                    "belong on a single server's injector (got "
                    f"{', '.join(f.label() for f in alien)})")
            for spec in faults.faults:
                if spec.replica >= self.policy.replicas:
                    raise ServeError(
                        f"fault {spec.label()} targets replica "
                        f"{spec.replica} but the fleet has only "
                        f"{self.policy.replicas}")
                self._fault_ticks.setdefault(spec.step, []).append(spec)
        self.step_counter = SharedCounter()
        self.trace = Trace(counter=self.step_counter)
        self.batch_counter = SharedCounter()
        self.router = ConsistentHashRouter(self.policy.replicas,
                                           self.policy.vnodes)
        weights = dict(self.policy.tenant_weights)
        self._queue_weights = weights
        self.replicas = [
            _Replica(
                index,
                ProofServer(
                    machine,
                    queue_capacity=queue_capacity,
                    max_batch_requests=max_batch_requests,
                    batching=batching, caching=caching,
                    strategy=strategy,
                    twiddle_capacity=twiddle_capacity,
                    snapshot_every=snapshot_every,
                    journal=WriteAheadJournal(),
                    trace=self.trace,
                    batch_counter=self.batch_counter,
                    replica=index),
                WeightedFairQueue(queue_capacity, weights=weights))
            for index in range(self.policy.replicas)
        ]
        # Coordination traffic is field-independent fabric messaging;
        # one memoized model prices all of it (same convention as the
        # single server's journal overhead).
        self._overhead_model = CostModel(machine,
                                         field_by_name("Goldilocks"))
        self._parked: list[ProofRequest] = []
        self._arrivals_pending = 0
        self._served = False

    # -- helpers -------------------------------------------------------------

    def _overhead_seconds(self, messages: int) -> float:
        return self._overhead_model.estimate(
            [Phase(name="fleet-overhead", messages=messages)]).total_s

    def _fleet_event(self, kind: str, detail: str) -> None:
        self.trace.record(TraceEvent(kind=kind, level="serve",
                                     detail=detail))

    def _reachable(self) -> set[int]:
        """Replicas the router may place new work on right now."""
        return {r.index for r in self.replicas if r.serving}

    def _fresh_queue(self) -> WeightedFairQueue:
        return WeightedFairQueue(self.queue_capacity,
                                 weights=self._queue_weights)

    # -- the event loop ------------------------------------------------------

    def serve(self, requests: list[ProofRequest]) -> FleetReport:
        """Run the workload across the fleet; returns the full account."""
        if self._served:
            raise ServeError(
                "FleetServer is one-shot: build a fresh fleet per run "
                "(replica journals and caches carry the previous run)")
        self._served = True
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ServeError("workload has duplicate request ids")
        clock = VirtualClock(0.0)
        loop = EventLoop(clock)
        fleet = FleetReport(
            machine_name=self.machine.name, policy=self.policy,
            replica_reports=[r.report for r in self.replicas])
        arrivals = sorted(requests,
                          key=lambda r: (r.arrival_s, r.request_id))
        for request in arrivals:
            loop.schedule(request.arrival_s, "arrival", request,
                          priority=_PRI_ARRIVAL)
        self._arrivals_pending = len(arrivals)
        loop.schedule(0.0, "heartbeat", 0, priority=_PRI_HEARTBEAT)
        while not loop.empty:
            event = loop.pop_next()
            if event.kind == "arrival":
                self._on_arrival(event.payload, clock, loop, fleet)
            elif event.kind == "complete":
                self._on_completion(event.payload, clock, loop, fleet)
            elif event.kind == "heartbeat":
                self._on_heartbeat(event.payload, clock, loop, fleet)
        if self._parked:
            lost = sorted(r.request_id for r in self._parked)
            raise ServeError(
                f"fleet lost every replica with {len(lost)} admitted "
                f"request(s) outstanding: {lost}")
        results = sorted(
            (result for replica in self.replicas
             for result in replica.report.results),
            key=lambda result: result.request.request_id)
        emitted = [result.request.request_id for result in results]
        duplicates = sorted({i for i in emitted if emitted.count(i) > 1})
        if duplicates:
            raise ServeError(
                f"exactly-once violated: requests {duplicates} were "
                "emitted by more than one replica")
        fleet.results = results
        fleet.makespan_s = clock.now_s
        for replica in self.replicas:
            replica.report.makespan_s = clock.now_s
        return fleet

    # -- arrivals ------------------------------------------------------------

    def _on_arrival(self, request: ProofRequest, clock: VirtualClock,
                    loop: EventLoop, fleet: FleetReport) -> None:
        self._arrivals_pending -= 1
        fleet.offered += 1
        reachable = self._reachable()
        if not reachable:
            # Total outage: the front door itself refuses (there is no
            # journal to admit into, so this is a clean fleet-level
            # rejection, not lost work).
            fleet.unroutable += 1
            fleet.route_s += self._overhead_seconds(REJECT_MESSAGES)
            self._fleet_event(
                "serve-route",
                f"request={request.request_id} replica=none "
                f"rejected=no-reachable-replica")
            return
        target = self.replicas[self.router.route(
            self.router.key_of(request), reachable, self.policy.spread,
            lambda index: len(self.replicas[index].queue))]
        fleet.routed += 1
        fleet.route_s += self._overhead_seconds(ROUTE_MESSAGES)
        self._fleet_event(
            "serve-route",
            f"request={request.request_id} replica={target.index} "
            f"tenant={request.tenant_id} "
            f"key={request.field_name}/{request.log_size}"
            f"/{request.direction}")
        self._admit(target, request, clock)
        self._pump(target, clock, loop)

    def _admit(self, replica: _Replica, request: ProofRequest,
               clock: VirtualClock) -> None:
        """Mirror the single server's admission step on one replica."""
        server, report = replica.server, replica.report
        report.offered += 1
        if replica.queue.offer(request):
            report.accepted += 1
            server._serve_event(
                "serve-accept",
                f"request={request.request_id} "
                f"queue={len(replica.queue)}/{replica.queue.capacity}")
            server._journal_append(
                "admit", {"request": request.to_record()}, clock, report)
        else:
            report.rejected += 1
            report.note_rejected(request.tenant_id)
            report.rejection_s += server._rejection_seconds(request)
            replica.handled.add(request.request_id)
            server._serve_event(
                "serve-reject",
                f"request={request.request_id} queue-full "
                f"capacity={replica.queue.capacity}")
            server._journal_append(
                "reject",
                {"request_id": request.request_id,
                 "reason": "queue-full"}, clock, report)

    # -- dispatch / completion ----------------------------------------------

    def _pump(self, replica: _Replica, clock: VirtualClock,
              loop: EventLoop) -> None:
        """Start the replica's next dispatch if it is idle."""
        if not replica.serving or replica.inflight is not None:
            return
        if replica.queue.empty:
            return
        group = replica.queue.take_batch(self.max_batch_requests,
                                         batching=self.batching)
        inflight = replica.server._dispatch_begin(group, clock,
                                                  replica.report)
        replica.inflight = inflight
        replica.completion_event = loop.schedule(
            clock.now_s + inflight.duration_s, "complete",
            (replica.index, replica.epoch), priority=_PRI_COMPLETE)

    def _on_completion(self, payload: tuple[int, int],
                       clock: VirtualClock, loop: EventLoop,
                       fleet: FleetReport) -> None:
        index, epoch = payload
        replica = self.replicas[index]
        if replica.epoch != epoch or replica.inflight is None:
            return  # fenced/voided after scheduling; the event is stale
        inflight = replica.inflight
        replica.inflight = None
        replica.completion_event = None
        replica.server._dispatch_commit(inflight, clock, replica.report,
                                        replica.handled)
        replica.server._maybe_snapshot(replica.queue, clock,
                                       replica.report, replica.handled)
        self._pump(replica, clock, loop)
        if (replica.serving and replica.inflight is None
                and self.policy.steal_enabled):
            self._maybe_steal(replica, clock, loop, fleet)

    # -- work stealing -------------------------------------------------------

    def _maybe_steal(self, thief: _Replica, clock: VirtualClock,
                     loop: EventLoop, fleet: FleetReport) -> None:
        """An idle replica relieves the most-loaded serving one."""
        if (not thief.serving or thief.inflight is not None
                or not thief.queue.empty):
            return
        victims = [r for r in self.replicas
                   if r is not thief and r.serving
                   and len(r.queue) >= self.policy.steal_threshold]
        if not victims:
            return
        victim = max(victims, key=lambda r: (len(r.queue), -r.index))
        count = min(self.policy.steal_max, len(victim.queue) - 1)
        if count < 1:
            return
        for request in victim.queue.drop_worst(count):
            victim.server._journal_append(
                "steal",
                {"request_id": request.request_id, "to": thief.index},
                clock, victim.report)
            thief.queue.restore([request])
            thief.server._journal_append(
                "admit", {"request": request.to_record()}, clock,
                thief.report)
            fleet.stolen_requests += 1
            fleet.steal_s += self._overhead_seconds(STEAL_MESSAGES)
            self._fleet_event(
                "serve-steal",
                f"request={request.request_id} from={victim.index} "
                f"to={thief.index}")
        fleet.steals += 1
        self._pump(thief, clock, loop)

    # -- heartbeats, detection, faults ---------------------------------------

    def _on_heartbeat(self, tick: int, clock: VirtualClock,
                      loop: EventLoop, fleet: FleetReport) -> None:
        # 1. inject the fleet faults scheduled for this tick.
        for spec in self._fault_ticks.get(tick, []):
            self.trace.record(TraceEvent(
                kind="fault", level="resilience", detail=spec.label()))
            replica = self.replicas[spec.replica]
            if spec.kind == "replica-crash":
                fleet.deaths += 1
                replica.alive = False
                if replica.inflight is not None:
                    replica.void_inflight(loop)
                    replica.orphaned = True
            elif spec.kind == "network-partition":
                fleet.partitions += 1
                replica.partitioned = True
                replica.partition_heal_tick = tick + spec.count
                if replica.inflight is not None:
                    # The batch's compute is lost mid-flight; its
                    # requests are parked and re-queued at heal (the
                    # journal's dispatch record stays orphaned until
                    # the heal's "recover" record reconciles it).
                    replica.stalled = list(replica.inflight.group)
                    replica.void_inflight(loop)
            elif spec.kind == "heartbeat-loss":
                fleet.heartbeat_losses += 1
                replica.muted = True
                replica.mute_heal_tick = tick + spec.count

        # 2. heal partitions and heartbeat mutes ending at this tick.
        for replica in self.replicas:
            if replica.partitioned \
                    and tick >= replica.partition_heal_tick:
                replica.partitioned = False
                if replica.fenced:
                    self._rejoin(replica, tick, clock, loop, fleet)
                else:
                    self._resume_after_partition(replica, clock, loop)
            if replica.muted and tick >= replica.mute_heal_tick:
                replica.muted = False
                if replica.fenced and replica.alive:
                    self._rejoin(replica, tick, clock, loop, fleet)

        # 3. heartbeats: everything alive, unfenced, and connected beats.
        for replica in self.replicas:
            if (replica.alive and not replica.fenced
                    and not replica.partitioned and not replica.muted):
                replica.last_beat_tick = tick
                fleet.heartbeats += 1
                fleet.heartbeat_s += self._overhead_seconds(
                    HEARTBEAT_MESSAGES)
                if replica.suspected:
                    replica.suspected = False
                    fleet.detector_recoveries += 1
                    self._fleet_event(
                        "serve-heartbeat",
                        f"replica={replica.index} recovered tick={tick}")

        # 4. the failure detector: phi = missed heartbeat ticks.
        for replica in self.replicas:
            if not replica.member:
                continue
            phi = float(tick - replica.last_beat_tick)
            if phi >= self.policy.failover_phi:
                if not replica.suspected:
                    # Thresholds closer than one tick apart can cross
                    # both at once; the suspicion still precedes its
                    # resolution in the trace.
                    fleet.suspicions += 1
                    self._fleet_event(
                        "serve-heartbeat",
                        f"replica={replica.index} suspect phi={phi:g} "
                        f"tick={tick}")
                replica.suspected = False
                self._failover(replica, tick, clock, loop, fleet)
            elif phi >= self.policy.suspect_phi \
                    and not replica.suspected:
                replica.suspected = True
                fleet.suspicions += 1
                self._fleet_event(
                    "serve-heartbeat",
                    f"replica={replica.index} suspect phi={phi:g} "
                    f"tick={tick}")

        # 5. idle serving replicas may steal queued work.
        if self.policy.steal_enabled:
            for replica in self.replicas:
                self._maybe_steal(replica, clock, loop, fleet)

        # 6. keep ticking while any outcome still depends on the
        # detector or on queued/in-flight/pending work.
        if not self._work_remaining():
            return
        if (self._parked and not self._revival_possible(tick)
                and not any(t > tick for t in self._fault_ticks)
                and not any(r.inflight is not None or len(r.queue)
                            or r.stalled or r.suspected or r.orphaned
                            for r in self.replicas)):
            # Everything left is parked, no replica can ever serve
            # again, and no scheduled fault could change that: further
            # ticks are no-ops.  Stop beating; once the arrival events
            # drain, serve() reports the stranded requests as a
            # ServeError instead of spinning the detector forever.
            return
        interval = self.policy.heartbeat_interval_s
        next_tick = tick + 1
        if self._fleet_idle():
            # Nothing queued, nothing in flight, nobody silent: the
            # only reason to tick is the *next* arrival or the next
            # scheduled fault.  Coalesce the idle gap (the skipped
            # beats are not priced; every member kept beating).
            next_time = loop.peek_next_time()
            if next_time is not None:
                candidate = max(next_tick,
                                int(math.floor(next_time / interval)))
                pending_faults = [t for t in self._fault_ticks
                                  if t > tick]
                if pending_faults:
                    candidate = min(candidate, min(pending_faults))
                if candidate > next_tick:
                    for replica in self.replicas:
                        if replica.member and replica.alive:
                            replica.last_beat_tick = candidate - 1
                    next_tick = candidate
        loop.schedule(next_tick * interval, "heartbeat", next_tick,
                      priority=_PRI_HEARTBEAT)

    def _work_remaining(self) -> bool:
        if self._arrivals_pending > 0 or self._parked:
            return True
        for replica in self.replicas:
            if (replica.inflight is not None or len(replica.queue)
                    or replica.stalled or replica.suspected
                    or replica.orphaned):
                return True
        return False

    def _revival_possible(self, tick: int) -> bool:
        """Could any replica serve now or re-enter service later?

        A serving replica counts; so does one whose partition or mute
        heals at a future tick (the heal path resumes or rejoins it).
        A crashed replica — fenced or not — never comes back: the
        crash kinds model process death, not disconnection.
        """
        for replica in self.replicas:
            if replica.serving:
                return True
            if not replica.alive:
                continue
            if replica.partitioned and replica.partition_heal_tick > tick:
                return True
            if replica.fenced and (replica.partition_heal_tick > tick
                                   or replica.mute_heal_tick > tick):
                return True
        return False

    def _fleet_idle(self) -> bool:
        """True when only future arrivals/faults could need a tick."""
        for replica in self.replicas:
            if (replica.inflight is not None or len(replica.queue)
                    or replica.stalled or replica.suspected
                    or replica.orphaned):
                return False
            if replica.member and not (replica.alive
                                       and not replica.partitioned
                                       and not replica.muted):
                return False  # someone is silent; phi must keep rising
        return not self._parked

    # -- partition heal / rejoin / failover ----------------------------------

    def _resume_after_partition(self, replica: _Replica,
                                clock: VirtualClock,
                                loop: EventLoop) -> None:
        """A short partition healed before fencing: resume in place.

        The replica kept its lease; it journals a ``recover`` record
        (whose replay moves unemitted in-flight work back to queued —
        the same reconciliation single-server recovery writes) and
        re-queues the batch the partition interrupted.
        """
        if replica.stalled:
            replica.server._journal_append(
                "recover",
                {"reason": "network-partition-heal",
                 "requeued": sorted(r.request_id
                                    for r in replica.stalled)},
                clock, replica.report)
            replica.queue.restore(replica.stalled)
            replica.stalled = []
        self._pump(replica, clock, loop)

    def _rejoin(self, replica: _Replica, tick: int, clock: VirtualClock,
                loop: EventLoop, fleet: FleetReport) -> None:
        """A fenced replica comes back — empty, under a fresh journal.

        Its previous journal was already failed over; handing it a new
        one (a new incarnation's log) is what makes a second failover
        of the same replica safe: there is no stale record to replay
        twice.
        """
        replica.server.journal = WriteAheadJournal()
        replica.queue = self._fresh_queue()
        replica.handled = set()
        replica.fenced = False
        replica.alive = True
        replica.suspected = False
        replica.orphaned = False
        replica.stalled = []
        replica.last_beat_tick = tick
        fleet.rejoins += 1
        self._fleet_event(
            "serve-heartbeat", f"replica={replica.index} rejoin "
            f"tick={tick}")
        self._drain_parked(clock, loop, fleet)
        if self.policy.steal_enabled:
            self._maybe_steal(replica, clock, loop, fleet)

    def _failover(self, replica: _Replica, tick: int,
                  clock: VirtualClock, loop: EventLoop,
                  fleet: FleetReport) -> None:
        """Fence a silent replica and replay its journal onto survivors.

        Fencing strictly precedes the replay: once fenced, the replica
        never journals or emits again (stale completion events are
        epoch-checked away), so a request is either already emitted in
        the journal — and stays with the victim's results — or is an
        orphan re-admitted on exactly one survivor.  That ordering is
        the exactly-once argument.
        """
        replica.fenced = True
        if replica.inflight is not None:
            replica.void_inflight(loop)
        replica.orphaned = False
        replica.stalled = []
        replica.queue = self._fresh_queue()
        orphans: tuple[ProofRequest, ...] = ()
        replayed = 0
        if len(replica.server.journal):
            resume = replay_journal(replica.server.journal)
            orphans = resume.queued
            replayed = resume.replayed_records
        fleet.failovers += 1
        fleet.failover_requests += len(orphans)
        fleet.replayed_records += replayed
        fleet.failover_s += self._overhead_seconds(
            FAILOVER_MESSAGES + REPLAY_MESSAGES_PER_RECORD * replayed)
        self._fleet_event(
            "serve-failover",
            f"replica={replica.index} orphans={len(orphans)} "
            f"replayed={replayed} tick={tick}")
        touched: list[_Replica] = []
        for request in orphans:
            target = self._readmit(request, clock, fleet)
            if target is not None and target not in touched:
                touched.append(target)
        for target in touched:
            self._pump(target, clock, loop)

    def _readmit(self, request: ProofRequest, clock: VirtualClock,
                 fleet: FleetReport) -> _Replica | None:
        """Place one failover orphan on a survivor (or park it)."""
        reachable = self._reachable()
        if not reachable:
            self._parked.append(request)
            return None
        target = self.replicas[self.router.route(
            self.router.key_of(request), reachable, self.policy.spread,
            lambda index: len(self.replicas[index].queue))]
        # Failed-over work is an obligation, not an offer: it bypasses
        # the admission bound exactly like single-server recovery's
        # requeue does.
        target.queue.restore([request])
        target.report.recovered_requests += 1
        target.server._serve_event(
            "serve-accept",
            f"request={request.request_id} failover "
            f"queue={len(target.queue)}/{target.queue.capacity}")
        target.server._journal_append(
            "admit", {"request": request.to_record()}, clock,
            target.report)
        self._fleet_event(
            "serve-route",
            f"request={request.request_id} replica={target.index} "
            f"tenant={request.tenant_id} failover")
        return target

    def _drain_parked(self, clock: VirtualClock, loop: EventLoop,
                      fleet: FleetReport) -> None:
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        touched: list[_Replica] = []
        for request in parked:
            target = self._readmit(request, clock, fleet)
            if target is not None and target not in touched:
                touched.append(target)
        for target in touched:
            self._pump(target, clock, loop)
