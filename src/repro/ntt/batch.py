"""Batched NTTs.

Proof systems transform many same-size polynomials at once (one per
witness column / quotient chunk); GPU implementations exploit this by
amortizing twiddle loads and filling the machine.  The batch API is a
first-class object so the multi-GPU engines and the cost model can treat
"B transforms of size n" as a single workload with its own parallelism.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt import radix2
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["batch_ntt", "batch_intt", "BatchTransform"]


def batch_ntt(field: PrimeField, batch: Sequence[Sequence[int]],
              cache: TwiddleCache | None = None) -> list[list[int]]:
    """Forward NTT of every vector in ``batch`` (all the same size)."""
    return BatchTransform(field, cache).forward(batch)


def batch_intt(field: PrimeField, batch: Sequence[Sequence[int]],
               cache: TwiddleCache | None = None) -> list[list[int]]:
    """Inverse NTT of every vector in ``batch``."""
    return BatchTransform(field, cache).inverse(batch)


class BatchTransform:
    """Reusable batched transform bound to one field and twiddle cache.

    The twiddle tables are materialized once on first use per size; every
    subsequent vector in the batch reuses them, mirroring the resident
    device tables of a GPU implementation.
    """

    def __init__(self, field: PrimeField,
                 cache: TwiddleCache | None = None) -> None:
        self.field = field
        self.cache = cache or default_cache

    def _check(self, batch: Sequence[Sequence[int]]) -> int:
        if not batch:
            raise NTTError("empty batch")
        n = len(batch[0])
        for i, vec in enumerate(batch):
            if len(vec) != n:
                raise NTTError(
                    f"batch vectors must share a size: vector 0 has {n}, "
                    f"vector {i} has {len(vec)}")
        return n

    def forward(self, batch: Sequence[Sequence[int]]) -> list[list[int]]:
        """Transform every vector; twiddles computed once."""
        n = self._check(batch)
        self.cache.forward(self.field, n)  # warm the shared table
        return [radix2.ntt(self.field, vec, self.cache) for vec in batch]

    def inverse(self, batch: Sequence[Sequence[int]]) -> list[list[int]]:
        """Inverse-transform every vector; twiddles computed once."""
        n = self._check(batch)
        self.cache.inverse(self.field, n)
        return [radix2.intt(self.field, vec, self.cache) for vec in batch]

    def map_pointwise(self, batch_a: Sequence[Sequence[int]],
                      batch_b: Sequence[Sequence[int]],
                      op: Callable[[int, int], int]) -> list[list[int]]:
        """Pointwise combine two batches (e.g. spectral multiply)."""
        if len(batch_a) != len(batch_b):
            raise NTTError(
                f"batch sizes differ: {len(batch_a)} vs {len(batch_b)}")
        return [[op(x, y) for x, y in zip(a, b, strict=True)]
                for a, b in zip(batch_a, batch_b)]
