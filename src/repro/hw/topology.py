"""Inter-GPU interconnect topologies.

The multi-GPU level of the hierarchy is the only one whose exchange
fabric varies qualitatively between machines, so it gets its own model.
Three families cover the hardware the paper's domain runs on:

* **NVSwitch** (DGX A100/H100): every GPU has full bisection bandwidth
  to every other; all-to-all runs at the per-GPU link rate.
* **NVLink ring/mesh** (DGX-1 style): direct links to a few neighbours;
  all-to-all pays a ring-routing factor.
* **PCIe through host**: no peer-to-peer — every transfer bounces
  through host memory, consuming the link twice, and all GPUs under a
  root complex share it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError

__all__ = ["Interconnect", "nvswitch", "nvlink_ring", "pcie_host_staged",
           "infiniband"]


@dataclass(frozen=True)
class Interconnect:
    """A multi-GPU exchange fabric.

    Attributes
    ----------
    kind:
        Topology family name ("nvswitch", "nvlink-ring", "pcie-host").
    link_bandwidth:
        Per-GPU unidirectional link bandwidth in bytes/second.
    latency:
        Fixed per-collective software+hardware latency in seconds.
    peer_to_peer:
        Whether GPUs can address each other directly.  Without it, every
        byte crosses the link twice (device-to-host then host-to-device).
    ring_factor_base:
        For ring topologies, the all-to-all slowdown grows with GPU
        count; 0 for non-ring fabrics.
    """

    kind: str
    link_bandwidth: float
    latency: float
    peer_to_peer: bool = True
    ring_factor_base: float = 0.0

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0:
            raise HardwareModelError("link bandwidth must be positive")
        if self.latency < 0:
            raise HardwareModelError("latency cannot be negative")

    def bounce_factor(self) -> float:
        """How many times each byte crosses a link (2 when host-staged)."""
        return 1.0 if self.peer_to_peer else 2.0

    def alltoall_bandwidth(self, gpu_count: int) -> float:
        """Effective per-GPU bandwidth during a full all-to-all.

        NVSwitch sustains the link rate.  Rings serialize traffic across
        hops: the classic ring all-to-all moves each byte an average of
        ``G/4`` hops, so effective bandwidth drops accordingly.  Host
        staging halves bandwidth (bounce) and shares the host root
        complex between all GPUs on it.
        """
        if gpu_count < 1:
            raise HardwareModelError(f"gpu_count must be >= 1, got {gpu_count}")
        bandwidth = self.link_bandwidth / self.bounce_factor()
        if self.ring_factor_base and gpu_count > 2:
            bandwidth /= max(1.0, self.ring_factor_base * gpu_count / 4.0)
        if not self.peer_to_peer and gpu_count > 2:
            # Root-complex contention: pairs of GPUs share host paths.
            bandwidth /= 2.0
        return bandwidth

    def pairwise_bandwidth(self, gpu_count: int) -> float:
        """Effective per-GPU bandwidth for disjoint-pair exchanges.

        Pairwise patterns (the butterfly stages of a cross-GPU NTT) avoid
        ring congestion entirely on NVSwitch and mostly on rings (each
        pair uses its own links for power-of-two partner distances).
        """
        if gpu_count < 1:
            raise HardwareModelError(f"gpu_count must be >= 1, got {gpu_count}")
        bandwidth = self.link_bandwidth / self.bounce_factor()
        if not self.peer_to_peer and gpu_count > 2:
            bandwidth /= 2.0
        return bandwidth

    def describe(self) -> str:
        p2p = "P2P" if self.peer_to_peer else "host-staged"
        return (f"{self.kind} ({self.link_bandwidth / 1e9:.0f} GB/s per GPU, "
                f"{p2p}, {self.latency * 1e6:.0f} us latency)")


def nvswitch(link_bandwidth: float = 600e9,
             latency: float = 5e-6) -> Interconnect:
    """Fully-connected NVSwitch fabric (DGX A100 default: 600 GB/s)."""
    return Interconnect(kind="nvswitch", link_bandwidth=link_bandwidth,
                        latency=latency, peer_to_peer=True)


def nvlink_ring(link_bandwidth: float = 150e9,
                latency: float = 8e-6) -> Interconnect:
    """Direct NVLink ring/mesh (DGX-1 V100 style: 150 GB/s per GPU)."""
    return Interconnect(kind="nvlink-ring", link_bandwidth=link_bandwidth,
                        latency=latency, peer_to_peer=True,
                        ring_factor_base=1.0)


def pcie_host_staged(link_bandwidth: float = 32e9,
                     latency: float = 15e-6) -> Interconnect:
    """PCIe 4.0 x16 with no P2P: all traffic bounces through the host."""
    return Interconnect(kind="pcie-host", link_bandwidth=link_bandwidth,
                        latency=latency, peer_to_peer=False)


def infiniband(link_bandwidth: float = 25e9,
               latency: float = 12e-6) -> Interconnect:
    """Inter-node InfiniBand fabric, per-GPU share.

    DGX A100 default: 8x HDR 200 Gb/s HCAs per node, one per GPU —
    25 GB/s per GPU through a non-blocking fat tree (rail-optimized, so
    all-to-all sustains the rail rate).
    """
    return Interconnect(kind="infiniband", link_bandwidth=link_bandwidth,
                        latency=latency, peer_to_peer=True)
