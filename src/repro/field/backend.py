"""Pluggable compute backends for bulk field arithmetic.

Every hot path in this library — the NTT engines, the polynomial
algebra, the simulator's charged local compute — bottoms out in the
bulk helpers of :mod:`repro.field.vector`.  This module makes the
substrate those helpers run on *pluggable*:

* :class:`PythonBackend` — the reference semantics: list comprehensions
  over arbitrary-precision Python integers.  Always available, always
  correct, the oracle the others are tested against.
* :class:`NumPyBackend` — vectorized ``uint64`` lane arithmetic using
  32-bit limb splitting with Montgomery-style multi-word reduction, so
  64-bit fields like Goldilocks never overflow a ``uint64`` product
  (see ``docs/BACKENDS.md`` for the overflow analysis).
* :class:`repro.field.multilimb.MultiLimbBackend` — NumPy semantics
  plus limb-plane CIOS Montgomery kernels for moduli above 64 bits
  (BN254-Fr, BLS12-381-Fr); opt-in, see ``docs/FIELDS.md``.

The active backend is process-global.  Select it with the
``REPRO_BACKEND`` environment variable (``python`` | ``numpy`` |
``multilimb`` | ``auto``), the ``repro --backend`` CLI flag, or
programmatically:

>>> from repro.field.backend import get_backend, use_backend
>>> get_backend().name in ("python", "numpy")
True
>>> with use_backend("python") as b:
...     b.name
'python'

``auto`` resolves to ``numpy`` when NumPy is importable and falls back
to ``python`` (with a one-line warning when ``numpy`` was requested
explicitly but is unavailable).
"""

from __future__ import annotations

import abc
import os
import warnings
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import FieldError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.field.prime_field import PrimeField

__all__ = [
    "FieldBackend", "PythonBackend", "NumPyBackend",
    "available_backends", "get_backend", "set_backend", "use_backend",
    "numpy_available", "BACKEND_ENV_VAR",
]

#: Environment variable consulted for the initial backend choice.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def numpy_available() -> bool:
    """True when NumPy can be imported (it is an optional dependency)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


# ---------------------------------------------------------------------------
# interface
# ---------------------------------------------------------------------------


class FieldBackend(abc.ABC):
    """Bulk vector arithmetic over one :class:`PrimeField`.

    A backend works on *packed* vectors: :meth:`pack` converts a
    sequence of canonical ints into the backend's native representation
    (a plain list for Python, a ``uint64`` array for NumPy) and
    :meth:`unpack` converts back.  The list-in/list-out helpers in
    :mod:`repro.field.vector` pack and unpack around every call; hot
    loops that amortize (the NTT cores) pack once, run whole stages on
    the packed form, and unpack once at the end.
    """

    #: Short identifier used by the CLI and benchmark reports.
    name: str = "abstract"

    # -- lifecycle -----------------------------------------------------------

    @abc.abstractmethod
    def pack(self, field: "PrimeField", values: Sequence[int]) -> Any:
        """Convert a sequence of ints into the native vector form.

        Entries are reduced into canonical ``[0, p)`` form; inputs a
        plain-Python implementation would accept (negative, >= p) give
        the same results they would there.
        """

    @abc.abstractmethod
    def unpack(self, field: "PrimeField", data: Any) -> list[int]:
        """Convert a native vector back to a list of Python ints."""

    # -- element-wise ops on packed vectors ----------------------------------

    @abc.abstractmethod
    def add(self, field: "PrimeField", a: Any, b: Any) -> Any:
        """Element-wise ``a + b`` mod p."""

    @abc.abstractmethod
    def sub(self, field: "PrimeField", a: Any, b: Any) -> Any:
        """Element-wise ``a - b`` mod p."""

    @abc.abstractmethod
    def mul(self, field: "PrimeField", a: Any, b: Any) -> Any:
        """Element-wise (Hadamard) product mod p."""

    @abc.abstractmethod
    def neg(self, field: "PrimeField", a: Any) -> Any:
        """Element-wise negation mod p."""

    @abc.abstractmethod
    def scale(self, field: "PrimeField", a: Any, s: int) -> Any:
        """Multiply every entry by the scalar ``s``."""

    # -- batched/structured ops ----------------------------------------------

    @abc.abstractmethod
    def pow_series(self, field: "PrimeField", base: int, n: int,
                   start: int = 1) -> Any:
        """Geometric series ``[start, start*base, ..., start*base^(n-1)]``."""

    @abc.abstractmethod
    def inv(self, field: "PrimeField", a: Any) -> Any:
        """Element-wise multiplicative inverse (raises on zero entries)."""

    @abc.abstractmethod
    def dot(self, field: "PrimeField", a: Any, b: Any) -> int:
        """Inner product mod p (returns a plain int)."""

    @abc.abstractmethod
    def sum(self, field: "PrimeField", a: Any) -> int:
        """Sum of all entries mod p (returns a plain int)."""

    # -- acceleration hooks ---------------------------------------------------

    def lane_ops(self, field: "PrimeField"):
        """A :class:`repro.field.simd.LaneOps` bundle, or ``None``.

        Non-``None`` means this backend can run whole NTT stages on
        packed arrays for ``field``; the radix-2 core uses this to
        transform without per-element Python work.  The base
        implementation (and any field the backend cannot accelerate)
        returns ``None``.
        """
        return None

    def describe(self) -> str:
        """One-line human-readable summary for ``repro info``."""
        return self.name


# ---------------------------------------------------------------------------
# pure-Python reference backend
# ---------------------------------------------------------------------------


class PythonBackend(FieldBackend):
    """The reference backend: list comprehensions over Python ints.

    This is the seed implementation of :mod:`repro.field.vector`,
    preserved verbatim; the vectorized backends are validated against
    it element for element.

    >>> from repro.field.presets import TEST_FIELD_97
    >>> PythonBackend().add(TEST_FIELD_97, [1, 96], [2, 3])
    [3, 2]
    """

    name = "python"

    def pack(self, field, values):
        return list(values)

    def unpack(self, field, data):
        return list(data)

    def add(self, field, a, b):
        p = field.modulus
        return [(x + y) % p for x, y in zip(a, b, strict=True)]

    def sub(self, field, a, b):
        p = field.modulus
        return [(x - y) % p for x, y in zip(a, b, strict=True)]

    def mul(self, field, a, b):
        p = field.modulus
        return [x * y % p for x, y in zip(a, b, strict=True)]

    def neg(self, field, a):
        p = field.modulus
        return [(p - x) % p for x in a]

    def scale(self, field, a, s):
        p = field.modulus
        return [x * s % p for x in a]

    def pow_series(self, field, base, n, start=1):
        p = field.modulus
        out = []
        acc = start % p
        for _ in range(n):
            out.append(acc)
            acc = acc * base % p
        return out

    def inv(self, field, a):
        # Montgomery's batch-inversion trick: one field inversion total.
        p = field.modulus
        n = len(a)
        prefix = [1] * (n + 1)
        for i, v in enumerate(a):
            if v == 0:
                raise FieldError(f"batch inversion hit zero at index {i}")
            prefix[i + 1] = prefix[i] * v % p
        inv_all = field.inv(prefix[n])
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = prefix[i] * inv_all % p
            inv_all = inv_all * a[i] % p
        return out

    def dot(self, field, a, b):
        p = field.modulus
        return sum(x * y for x, y in zip(a, b, strict=True)) % p

    def sum(self, field, a):
        return sum(a) % field.modulus

    def describe(self) -> str:
        return "python (reference: list comprehensions over Python ints)"


# ---------------------------------------------------------------------------
# NumPy backend: uint64 lanes, 32-bit limb splitting
# ---------------------------------------------------------------------------
#
# Three per-modulus regimes (chosen once and cached per field):
#
#   p < 2^32        direct:    a*b fits in 64 bits, one np.uint64 `%`.
#   p == Goldilocks special:   the repo's hand-written 2^64-2^32+1
#                              kernel (repro.field.goldilocks).
#   p < 2^64        Montgomery: two 32-bit limbs, SOS product + REDC
#                              with R = 2^64.  See docs/BACKENDS.md.
#   p >= 2^64       none:      fall back to PythonBackend semantics.


class _Kernel:
    """uint64 lane arithmetic for one modulus p < 2^64."""

    def __init__(self, p: int):
        import numpy as np

        self.p = p
        self.p64 = np.uint64(p)
        self.np = np

    # Subclasses provide: add, sub, neg, mul, mul_scalar(a, s: int).

    def pack(self, values) -> "Any":
        """Pack ints into canonical uint64 lanes; None if not packable.

        Values in ``[0, 2^64)`` are accepted and canonicalized with one
        vectorized ``%``; anything unrepresentable (negative ints,
        >= 2^64) returns ``None`` so the caller can fall back to the
        Python path, whose semantics allow arbitrary integers.
        """
        np = self.np
        try:
            arr = np.array(values, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            return None
        if arr.size and bool((arr >= self.p64).any()):
            arr = arr % self.p64
        return arr

    def unpack(self, arr) -> list[int]:
        return arr.tolist()

    # Lane-shape hooks: the structured helpers in NumPyBackend index
    # along the *element* axis through these, so kernels whose packed
    # form is not 1-D (the limb-plane kernels, shape (L, n) with the
    # element axis last) reuse them unchanged.

    def lanes(self, arr) -> int:
        """Number of field elements in a packed array."""
        return arr.shape[-1]

    def zero_mask(self, arr):
        """Boolean mask (1-D, one entry per element) of zero lanes."""
        return arr == 0

    def lane_int(self, arr, i: int) -> int:
        """Element ``i`` of a packed array as a Python int."""
        return int(arr[i])


class _DirectKernel(_Kernel):
    """p < 2^32: products of canonical values fit in uint64."""

    def add(self, a, b):
        np = self.np
        s = a + b
        return np.where(s >= self.p64, s - self.p64, s)

    def sub(self, a, b):
        np = self.np
        return np.where(a >= b, a - b, a + self.p64 - b)

    def neg(self, a):
        np = self.np
        return np.where(a == 0, a, self.p64 - a)

    def mul(self, a, b):
        return (a * b) % self.p64

    def mul_scalar(self, a, s: int):
        return (a * self.np.uint64(s)) % self.p64


class _MontgomeryKernel(_Kernel):
    """2^32 <= p < 2^64: 32-bit limb SOS product + Montgomery REDC.

    A 64x64 product needs 128 bits, which uint64 lanes cannot hold, so
    operands are split into 32-bit limbs and the four 32x32->64 partial
    products are assembled with explicit carry recovery.  Reduction is
    Montgomery REDC with R = 2^64 = two 32-bit words: each round adds
    ``m * p`` (with ``m = t_i * (-p^-1 mod 2^32) mod 2^32``) to clear
    one low limb; after two rounds the low 64 bits are zero and the
    high half is < 2p, fixed by one conditional subtraction.
    """

    def __init__(self, p: int):
        super().__init__(p)
        np = self.np
        self.mask32 = np.uint64(0xFFFFFFFF)
        self.sh32 = np.uint64(32)
        self.n0 = np.uint64(p & 0xFFFFFFFF)
        self.n1 = np.uint64(p >> 32)
        self.nprime = np.uint64((-pow(p, -1, 1 << 32)) % (1 << 32))
        self.r2 = np.uint64((1 << 128) % p)      # R^2 mod p
        self.eps = np.uint64((1 << 64) - p)      # 2^64 - p, for add/sub

    def add(self, a, b):
        np = self.np
        s = a + b  # wraps mod 2^64
        # Wrapped: true sum >= 2^64 > p, so add back 2^64 - p once.
        # Unwrapped: one conditional subtraction.
        return np.where(s < a, s + self.eps,
                        np.where(s >= self.p64, s - self.p64, s))

    def sub(self, a, b):
        np = self.np
        d = a - b  # wraps
        return np.where(a < b, d - self.eps, d)

    def neg(self, a):
        np = self.np
        return np.where(a == 0, a, self.p64 - a)

    def _montmul(self, a, b):
        """REDC(a * b) = a * b * R^-1 mod p, canonical in/out."""
        np = self.np
        m32, s32 = self.mask32, self.sh32
        a0 = a & m32
        a1 = a >> s32
        b0 = b & m32
        b1 = b >> s32

        # SOS product: t = a*b as limbs t0..t3 (each < 2^32 in uint64).
        p00 = a0 * b0
        p01 = a0 * b1
        p10 = a1 * b0
        p11 = a1 * b1
        t0 = p00 & m32
        s = (p00 >> s32) + (p01 & m32) + (p10 & m32)
        t1 = s & m32
        s = (s >> s32) + (p01 >> s32) + (p10 >> s32) + (p11 & m32)
        t2 = s & m32
        t3 = (s >> s32) + (p11 >> s32)
        t4 = np.zeros_like(t3)

        # REDC round 0: clear t0.
        m = (t0 * self.nprime) & m32
        mn0 = m * self.n0
        mn1 = m * self.n1
        c = (t0 + (mn0 & m32)) >> s32
        s = t1 + (mn0 >> s32) + (mn1 & m32) + c
        t1 = s & m32
        s = t2 + (mn1 >> s32) + (s >> s32)
        t2 = s & m32
        s = t3 + (s >> s32)
        t3 = s & m32
        t4 = t4 + (s >> s32)

        # REDC round 1: clear t1.
        m = (t1 * self.nprime) & m32
        mn0 = m * self.n0
        mn1 = m * self.n1
        c = (t1 + (mn0 & m32)) >> s32
        s = t2 + (mn0 >> s32) + (mn1 & m32) + c
        t2 = s & m32
        s = t3 + (mn1 >> s32) + (s >> s32)
        t3 = s & m32
        t4 = t4 + (s >> s32)

        # u = t4*2^64 + t3*2^32 + t2 < 2p: one conditional subtraction.
        u = (t3 << s32) | t2
        return np.where((t4 > 0) | (u >= self.p64), u - self.p64, u)

    def mul(self, a, b):
        # montmul(a, R^2) = a*R; montmul(a*R, b) = a*b.
        return self._montmul(self._montmul(a, self.r2), b)

    def mul_scalar(self, a, s: int):
        # Lift the scalar into Montgomery form with Python ints: one pass.
        s_mont = self.np.uint64((s << 64) % self.p)
        return self._montmul(a, s_mont)


class _GoldilocksKernel(_Kernel):
    """p = 2^64 - 2^32 + 1: the repo's specialized reduction kernel."""

    def __init__(self, p: int):
        super().__init__(p)
        from repro.field import goldilocks as gl

        self._gl = gl

    def add(self, a, b):
        return self._gl.gl_add(a, b)

    def sub(self, a, b):
        return self._gl.gl_sub(a, b)

    def neg(self, a):
        return self._gl.gl_neg(a)

    def mul(self, a, b):
        return self._gl.gl_mul(a, b)

    def mul_scalar(self, a, s: int):
        return self._gl.gl_mul(a, self.np.uint64(s))


class NumPyBackend(FieldBackend):
    """Vectorized uint64 backend (32-bit limb multi-word arithmetic).

    Fields with a modulus >= 2^64 (BN254-Fr, BLS12-381-Fr) exceed what
    uint64 lanes can represent and transparently run with the Python
    reference semantics; everything below 64 bits is vectorized.
    """

    name = "numpy"

    def __init__(self):
        import numpy  # noqa: F401 - fail fast if unavailable

        self._kernels: dict[int, _Kernel | None] = {}
        self._python = PythonBackend()

    def _kernel(self, field) -> _Kernel | None:
        p = field.modulus
        kernel = self._kernels.get(p, _MISSING)
        if kernel is _MISSING:
            if p >= 1 << 64:
                kernel = None
            elif p == (1 << 64) - (1 << 32) + 1:
                kernel = _GoldilocksKernel(p)
            elif p < 1 << 32:
                kernel = _DirectKernel(p)
            else:
                kernel = _MontgomeryKernel(p)
            self._kernels[p] = kernel
        return kernel

    # -- lifecycle -----------------------------------------------------------

    def pack(self, field, values):
        kernel = self._kernel(field)
        if kernel is None:
            return list(values)
        arr = kernel.pack(values)
        if arr is None:  # unrepresentable entries: Python semantics
            p = field.modulus
            arr = kernel.pack([v % p for v in values])
        return arr

    def unpack(self, field, data):
        if isinstance(data, list):
            return list(data)
        return self._kernel(field).unpack(data)

    def _pair(self, field, a, b):
        """Normalize two operands to a common representation."""
        kernel = self._kernel(field)
        if kernel is None:
            return None, list(a), list(b)
        np = kernel.np
        if not isinstance(a, np.ndarray):
            a = self.pack(field, a)
        if not isinstance(b, np.ndarray):
            b = self.pack(field, b)
        return kernel, a, b

    def _one(self, field, a):
        kernel = self._kernel(field)
        if kernel is None:
            return None, list(a)
        if not isinstance(a, kernel.np.ndarray):
            a = self.pack(field, a)
        return kernel, a

    @staticmethod
    def _length(a) -> int:
        # Packed arrays keep the element axis last (len() of a 2-D
        # limb-plane array would count limbs, not elements).
        if hasattr(a, "ndim") and getattr(a, "ndim", 0) > 1:
            return a.shape[-1]
        return len(a)

    @classmethod
    def _check_lengths(cls, a, b) -> None:
        if cls._length(a) != cls._length(b):
            raise ValueError(
                f"vector length mismatch: {cls._length(a)} vs "
                f"{cls._length(b)}")

    # -- element-wise ---------------------------------------------------------

    def add(self, field, a, b):
        self._check_lengths(a, b)
        kernel, a, b = self._pair(field, a, b)
        if kernel is None:
            return self._python.add(field, a, b)
        return kernel.add(a, b)

    def sub(self, field, a, b):
        self._check_lengths(a, b)
        kernel, a, b = self._pair(field, a, b)
        if kernel is None:
            return self._python.sub(field, a, b)
        return kernel.sub(a, b)

    def mul(self, field, a, b):
        self._check_lengths(a, b)
        kernel, a, b = self._pair(field, a, b)
        if kernel is None:
            return self._python.mul(field, a, b)
        return kernel.mul(a, b)

    def neg(self, field, a):
        kernel, a = self._one(field, a)
        if kernel is None:
            return self._python.neg(field, a)
        return kernel.neg(a)

    def scale(self, field, a, s):
        kernel, a = self._one(field, a)
        if kernel is None:
            return self._python.scale(field, a, s)
        return kernel.mul_scalar(a, s % field.modulus)

    # -- batched/structured ---------------------------------------------------

    def pow_series(self, field, base, n, start=1):
        kernel = self._kernel(field)
        if kernel is None or n < 8:
            return self._python.pow_series(field, base, n, start)
        # Doubling construction: out[:2k] done => out[k:2k] = out[:k]*b^k,
        # log2(n) vectorized multiplies instead of n sequential ones.
        np = kernel.np
        p = field.modulus
        base %= p
        arr = kernel.pack([start % p])
        while kernel.lanes(arr) < n:
            bpow = pow(base, kernel.lanes(arr), p)
            arr = np.concatenate(
                [arr, kernel.mul_scalar(arr, bpow)], axis=-1)
        return arr[..., :n]

    def _scan_prod(self, kernel, arr):
        """Hillis-Steele inclusive prefix product (log n stages)."""
        out = arr.copy()
        offset = 1
        while offset < kernel.lanes(out):
            out[..., offset:] = kernel.mul(
                out[..., offset:], out[..., :-offset])
            offset *= 2
        return out

    def inv(self, field, a):
        kernel, a = self._one(field, a)
        if kernel is None:
            return self._python.inv(field, a)
        np = kernel.np
        if kernel.lanes(a) == 0:
            return a
        zeros = np.flatnonzero(kernel.zero_mask(a))
        if zeros.size:
            raise FieldError(
                f"batch inversion hit zero at index {int(zeros[0])}")
        one = kernel.pack([1])
        incl = self._scan_prod(kernel, a)
        inv_total = field.inv(kernel.lane_int(incl, -1))
        prefix = np.concatenate(                        # prod of a[:i]
            [one, incl[..., :-1]], axis=-1)
        rincl = self._scan_prod(kernel, a[..., ::-1].copy())
        suffix = np.concatenate(                        # prod of a[i+1:]
            [one, rincl[..., :-1]], axis=-1)[..., ::-1]
        return kernel.mul_scalar(kernel.mul(prefix, suffix), inv_total)

    def _tree_sum(self, kernel, arr) -> int:
        np = kernel.np
        while kernel.lanes(arr) > 1:
            if kernel.lanes(arr) % 2:
                arr = np.concatenate([arr, kernel.pack([0])], axis=-1)
            arr = kernel.add(arr[..., 0::2], arr[..., 1::2])
        return kernel.lane_int(arr, 0) if kernel.lanes(arr) else 0

    def dot(self, field, a, b):
        self._check_lengths(a, b)
        kernel, a, b = self._pair(field, a, b)
        if kernel is None:
            return self._python.dot(field, a, b)
        return self._tree_sum(kernel, kernel.mul(a, b))

    def sum(self, field, a):
        kernel, a = self._one(field, a)
        if kernel is None:
            return self._python.sum(field, a)
        return self._tree_sum(kernel, a)

    # -- acceleration hooks ---------------------------------------------------

    def lane_ops(self, field):
        kernel = self._kernel(field)
        if kernel is None:
            return None
        from repro.field.simd import LaneOps

        def pack(vals):
            arr = kernel.pack(vals)
            if arr is None:
                arr = kernel.pack([v % kernel.p for v in vals])
            return arr

        return LaneOps(field=field, add=kernel.add, sub=kernel.sub,
                       mul=kernel.mul,
                       scale=lambda arr, s: kernel.mul_scalar(arr, s),
                       pack=pack)

    def describe(self) -> str:
        return ("numpy (uint64 lanes; 32-bit limb Montgomery reduction "
                "for 33..64-bit moduli, Python fallback above 64 bits)")


_MISSING = object()


# ---------------------------------------------------------------------------
# registry and selection
# ---------------------------------------------------------------------------

_BACKEND_NAMES = ("python", "numpy", "multilimb")
_active: FieldBackend | None = None
_instances: dict[str, FieldBackend] = {}
_warned_fallback = False


def available_backends() -> dict[str, bool]:
    """Backend name -> whether it can be activated in this process.

    >>> available_backends()["python"]
    True
    """
    has_numpy = numpy_available()
    return {"python": True, "numpy": has_numpy, "multilimb": has_numpy}


def _instantiate(name: str) -> FieldBackend:
    backend = _instances.get(name)
    if backend is None:
        if name == "python":
            backend = PythonBackend()
        elif name == "multilimb":
            from repro.field.multilimb import MultiLimbBackend

            backend = MultiLimbBackend()
        else:
            backend = NumPyBackend()
        _instances[name] = backend
    return backend


def _resolve(name: str) -> FieldBackend:
    global _warned_fallback
    name = name.strip().lower()
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    if name not in _BACKEND_NAMES:
        raise FieldError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(_BACKEND_NAMES)} or 'auto'")
    if name in ("numpy", "multilimb") and not numpy_available():
        if not _warned_fallback:
            warnings.warn(
                f"repro: the {name!r} field backend was requested but numpy "
                "is not installed (pip install repro[fast]); falling back "
                "to the pure-Python backend", RuntimeWarning, stacklevel=3)
            _warned_fallback = True
        name = "python"
    return _instantiate(name)


def get_backend() -> FieldBackend:
    """The active backend (initialized from ``REPRO_BACKEND``, or auto)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(BACKEND_ENV_VAR, "auto"))
    return _active


def set_backend(name: str) -> FieldBackend:
    """Activate a backend by name; returns the instance now active.

    ``name`` is ``python``, ``numpy``, or ``auto``.  Requesting
    ``numpy`` without NumPy installed warns once and selects the
    Python backend instead of failing.
    """
    global _active
    _active = _resolve(name)
    return _active


class use_backend:
    """Context manager: temporarily activate a backend.

    >>> with use_backend("python") as backend:
    ...     backend.name
    'python'
    """

    def __init__(self, name: str):
        self._name = name
        self._previous: FieldBackend | None = None

    def __enter__(self) -> FieldBackend:
        global _active
        self._previous = get_backend()
        _active = _resolve(self._name)
        return _active

    def __exit__(self, *exc) -> None:
        global _active
        _active = self._previous
