"""Tests for the end-to-end proof cost model."""

import pytest

from repro.errors import ProverError
from repro.field import BN254_FR
from repro.hw import A100_PCIE_NODE, DGX_A100
from repro.multigpu import (
    ALL_ON, BaselineFourStepEngine, SingleGpuEngine, UniNTTEngine,
    UniNTTOptions,
)
from repro.sim import SimCluster
from repro.zkp import EndToEndModel


def make_model(engine_cls, machine=DGX_A100, msm_gpus=None, **kwargs):
    cluster = SimCluster(BN254_FR, machine.gpu_count)
    return EndToEndModel(machine, engine_cls(cluster, **kwargs),
                         msm_gpus=msm_gpus)


class TestEstimates:
    def test_positive_components(self):
        est = make_model(UniNTTEngine).proof_cost(1 << 18)
        assert est.ntt_s > 0
        assert est.msm_s > 0
        assert est.witness_s > 0
        assert est.total_s == pytest.approx(
            est.ntt_s + est.msm_s + est.witness_s)

    def test_domain_rounds_up(self):
        est = make_model(UniNTTEngine).proof_cost((1 << 18) + 1)
        assert est.domain_size == 1 << 19

    def test_monotone_in_constraints(self):
        model = make_model(UniNTTEngine)
        assert model.proof_cost(1 << 20).total_s > \
            model.proof_cost(1 << 18).total_s

    def test_validation(self):
        with pytest.raises(ProverError, match="constraints"):
            make_model(UniNTTEngine).proof_cost(0)
        with pytest.raises(ProverError, match="msm_gpus"):
            make_model(UniNTTEngine, msm_gpus=0)


class TestSystemConfigurations:
    def test_multi_gpu_msm_faster(self):
        n = 1 << 20
        single = make_model(SingleGpuEngine, msm_gpus=1).proof_cost(n)
        multi = make_model(SingleGpuEngine, msm_gpus=8).proof_cost(n)
        assert multi.msm_s < single.msm_s / 3

    def test_amdahl_story(self):
        """Once MSM is multi-GPU, NTT dominates; UniNTT removes it."""
        n = 1 << 22
        sota = make_model(SingleGpuEngine, msm_gpus=8).proof_cost(n)
        unintt = make_model(UniNTTEngine, msm_gpus=8).proof_cost(n)
        assert sota.ntt_fraction() > 0.35
        assert unintt.ntt_fraction() < sota.ntt_fraction() / 2
        assert unintt.total_s < sota.total_s

    def test_engine_ordering(self):
        n = 1 << 22
        times = [make_model(cls, msm_gpus=8).proof_cost(n).total_s
                 for cls in (SingleGpuEngine, BaselineFourStepEngine,
                             UniNTTEngine)]
        assert times[2] < times[1] < times[0]

    def test_pcie_machine_amplifies_ntt_gap(self):
        """On a slower interconnect the NTT choice matters even more."""
        n = 1 << 22
        gaps = {}
        for machine in (DGX_A100, A100_PCIE_NODE):
            sota = make_model(SingleGpuEngine, machine=machine,
                              msm_gpus=8).proof_cost(n)
            uni = make_model(UniNTTEngine, machine=machine,
                             msm_gpus=8).proof_cost(n)
            gaps[machine.name] = sota.ntt_s / uni.ntt_s
        assert gaps["A100-PCIe-node"] > gaps["DGX-A100"]


class TestCosetScaling:
    def test_fused_engine_skips_coset_passes(self):
        n = 1 << 20
        fused = make_model(UniNTTEngine, options=ALL_ON).proof_cost(n)
        unfused = make_model(
            UniNTTEngine,
            options=UniNTTOptions(fused_twiddle=False)).proof_cost(n)
        assert unfused.ntt_s > fused.ntt_s

    def test_non_unintt_engines_pay_coset_scaling(self):
        model = make_model(BaselineFourStepEngine)
        assert model._coset_scale_seconds(1 << 20) > 0
        fused = make_model(UniNTTEngine)
        assert fused._coset_scale_seconds(1 << 20) == 0
