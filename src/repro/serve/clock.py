"""A deterministic virtual clock for the serving simulation.

The scheduler never reads wall time: every timestamp it handles —
request arrivals, dispatch starts, completions, deadlines — lives on
this virtual axis, and the only way time moves is by explicit,
modeled-duration advances.  Two runs over the same workload therefore
replay bit-identically, which is what makes the serving reports (and
the chaos tests on top of them) reproducible artifacts rather than
load-dependent measurements.
"""

from __future__ import annotations

from repro.errors import ServeError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0:
            raise ServeError(f"clock cannot start at {start_s} < 0")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Jump forward to absolute time ``t_s`` (never backward)."""
        if t_s < self._now_s:
            raise ServeError(
                f"clock cannot rewind from {self._now_s} to {t_s}")
        self._now_s = float(t_s)
        return self._now_s

    def advance_by(self, dt_s: float) -> float:
        """Advance by a modeled duration ``dt_s >= 0``."""
        if dt_s < 0:
            raise ServeError(f"cannot advance by {dt_s} < 0 seconds")
        self._now_s += float(dt_s)
        return self._now_s

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now_s:.6f}s)"
