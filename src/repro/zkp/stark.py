"""A functional mini-STARK: trace -> composition -> FRI.

The complete hash-based proving flow over a single-column algebraic
execution trace, end to end and verifiable:

* **AIR**: the trace obeys the nonlinear transition
  ``t[i+1] = t[i]^2 + t[i]`` with public boundary values ``t[0]`` and
  ``t[n-1]`` (a square-and-add chain; nonlinear so the composition
  polynomial genuinely has degree ~2n and the quotient degree ~n).
* **Commit**: interpolate the trace (INTT), low-degree-extend onto the
  ``blowup``-times-larger coset (coset NTT), Merkle-commit.
* **Compose**: with Fiat-Shamir challenges alpha, combine the transition
  quotient ``C(x) / D(x)`` and the two boundary quotients pointwise on
  the coset (batch-inverted denominators) into one polynomial Q of
  degree < n.
* **Prove low degree**: FRI over Q's coset evaluations, transcript-bound
  to the trace commitment.
* **Verify**: replay the transcript, check the FRI proof, and — the
  consistency link — recompute Q at every FRI query position from
  Merkle-opened trace values and compare against FRI's layer-0 leaves.

This is the workload :mod:`repro.zkp.stark_model` prices and the
protocol the paper's multi-GPU NTT accelerates in hash-based systems;
DEEP-ALI sampling and multi-column traces are out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProverError
from repro.field.prime_field import PrimeField
from repro.ntt import coset as coset_mod
from repro.ntt import radix2
from repro.ntt.twiddle import default_cache
from repro.zkp.fri import (
    FriParameters, FriProof, FriProver, FriVerifier, Transcript,
    fri_query_indices,
)
from repro.zkp.merkle import MerklePath, MerkleTree

__all__ = ["SquareAffineAir", "StarkProof", "StarkProver", "StarkVerifier"]


@dataclass(frozen=True)
class SquareAffineAir:
    """The AIR family ``t[i+1] = a*t[i]^2 + b*t[i] + c``.

    Defaults give the square-and-add chain; any (a, b, c) with ``a != 0``
    keeps the transition nonlinear (quotient degree ~n), and ``a = 0``
    degenerates to an affine recurrence (still provable, trivial
    quotient).  Boundaries ``t[0]`` and ``t[n-1]`` are public.
    """

    field: PrimeField
    length: int  # trace length n (power of two)
    quad: int = 1
    linear: int = 1
    constant: int = 0

    def __post_init__(self) -> None:
        if self.length < 4 or self.length & (self.length - 1):
            raise ProverError(
                f"trace length must be a power of two >= 4, got "
                f"{self.length}")

    def step(self, t: int) -> int:
        """One application of the transition function."""
        p = self.field.modulus
        return (self.quad * t * t + self.linear * t + self.constant) % p

    def trace_from_seed(self, seed: int) -> list[int]:
        """Execute the chain for ``length`` steps."""
        trace = [seed % self.field.modulus]
        for _ in range(self.length - 1):
            trace.append(self.step(trace[-1]))
        return trace

    def is_valid_trace(self, trace: list[int]) -> bool:
        if len(trace) != self.length:
            return False
        return all(trace[i + 1] == self.step(trace[i])
                   for i in range(self.length - 1))


@dataclass(frozen=True)
class StarkProof:
    """Trace commitment, FRI proof, and trace openings at the queries."""

    trace_root: bytes
    boundary: tuple[int, int]            # public t[0], t[n-1]
    fri_proof: FriProof
    trace_openings: tuple[tuple[MerklePath, ...], ...]  # [query][4 paths]


class _CosetGeometry:
    """Shared precomputation: coset points and constraint denominators."""

    def __init__(self, field: PrimeField, n: int, blowup: int,
                 air: "SquareAffineAir | None" = None):
        self.air = air
        self.field = field
        self.n = n
        self.blowup = blowup
        self.domain_size = n * blowup
        p = field.modulus
        self.shift = field.multiplicative_generator
        self.omega_lde = field.root_of_unity(self.domain_size)
        self.omega_trace = field.root_of_unity(n)
        self.last_point = field.pow(self.omega_trace, n - 1)

    def point(self, index: int) -> int:
        """The index-th coset point ``g * w_L^index``."""
        p = self.field.modulus
        return self.shift * self.field.pow(self.omega_lde, index) % p

    def composition_value(self, index: int, t_here: int, t_next: int,
                          alphas: tuple[int, int, int],
                          boundary: tuple[int, int]) -> int:
        """Q at one coset point from the two trace values it needs.

        ``t_next`` is the trace polynomial at ``w_trace * x``, which on
        the LDE coset is position ``index + blowup`` (mod N).
        """
        field = self.field
        p = field.modulus
        x = self.point(index)
        # Transition quotient:
        # (T(wx) - step(T(x))) * (x - w^(n-1)) / Z(x).
        z = (field.pow(x, self.n) - 1) % p
        if self.air is not None:
            numerator = (t_next - self.air.step(t_here)) % p
        else:
            numerator = (t_next - t_here * t_here - t_here) % p
        transition = numerator * (x - self.last_point) % p \
            * field.inv(z) % p
        # Boundary quotients.
        b0 = (t_here - boundary[0]) * field.inv((x - 1) % p) % p
        b1 = (t_here - boundary[1]) * \
            field.inv((x - self.last_point) % p) % p
        a0, a1, a2 = alphas
        return (a0 * transition + a1 * b0 + a2 * b1) % p


def _fri_entry_transcript(field: PrimeField, root: bytes,
                          boundary: tuple[int, int]) -> Transcript:
    """The transcript state at the moment FRI begins: publics absorbed
    and the three composition challenges drawn."""
    transcript = Transcript(b"repro-stark")
    transcript.absorb(root)
    transcript.absorb_int(boundary[0])
    transcript.absorb_int(boundary[1])
    for _ in range(3):
        transcript.challenge_field(field)
    return transcript


class StarkProver:
    """Proves a trace satisfies :class:`SquareAffineAir`."""

    def __init__(self, air: SquareAffineAir, blowup: int = 8,
                 query_count: int = 20, final_degree: int = 8):
        self.air = air
        self.field = air.field
        self.fri_params = FriParameters(
            field=air.field, degree_bound=air.length, blowup=blowup,
            final_degree=final_degree, query_count=query_count)
        self.geometry = _CosetGeometry(air.field, air.length, blowup,
                                       air=air)

    def prove(self, trace: list[int]) -> StarkProof:
        air = self.air
        field = self.field
        p = field.modulus
        if not air.is_valid_trace(trace):
            raise ProverError("trace does not satisfy the AIR")
        n = air.length
        geom = self.geometry
        big_n = geom.domain_size
        boundary = (trace[0], trace[-1])

        # 1. interpolate + low-degree-extend + commit the trace.
        coefficients = radix2.intt(field, trace, default_cache)
        padded = coefficients + [0] * (big_n - n)
        lde = coset_mod.coset_ntt(field, padded, geom.shift,
                                  default_cache)
        trace_tree = MerkleTree(lde)

        # 2. Fiat-Shamir: bind trace commitment + publics, draw alphas.
        transcript = Transcript(b"repro-stark")
        transcript.absorb(trace_tree.root)
        transcript.absorb_int(boundary[0])
        transcript.absorb_int(boundary[1])
        alphas = (transcript.challenge_field(field),
                  transcript.challenge_field(field),
                  transcript.challenge_field(field))

        # 3. composition polynomial, pointwise on the coset.
        composition = [
            geom.composition_value(
                i, lde[i], lde[(i + geom.blowup) % big_n], alphas,
                boundary)
            for i in range(big_n)
        ]

        # 4. FRI over the composition, continuing the same transcript.
        fri_proof = FriProver(self.fri_params).prove_evaluations(
            composition, transcript=transcript)

        # 5. open the trace wherever FRI queried the composition.
        indices = fri_query_indices(
            self.fri_params, fri_proof,
            transcript=_fri_entry_transcript(field, trace_tree.root,
                                             boundary))
        openings = []
        half = big_n // 2
        for index in indices:
            positions = (index, (index + geom.blowup) % big_n,
                         index + half,
                         (index + half + geom.blowup) % big_n)
            openings.append(tuple(trace_tree.open(pos)
                                  for pos in positions))
        return StarkProof(trace_root=trace_tree.root, boundary=boundary,
                          fri_proof=fri_proof,
                          trace_openings=tuple(openings))



class StarkVerifier:
    """Checks a :class:`StarkProof` without seeing the trace."""

    def __init__(self, air: SquareAffineAir, blowup: int = 8,
                 query_count: int = 20, final_degree: int = 8):
        self.air = air
        self.field = air.field
        self.fri_params = FriParameters(
            field=air.field, degree_bound=air.length, blowup=blowup,
            final_degree=final_degree, query_count=query_count)
        self.geometry = _CosetGeometry(air.field, air.length, blowup,
                                       air=air)

    def verify(self, proof: StarkProof) -> bool:
        field = self.field
        geom = self.geometry
        big_n = geom.domain_size

        # Replay the transcript up to the alphas.
        transcript = Transcript(b"repro-stark")
        transcript.absorb(proof.trace_root)
        transcript.absorb_int(proof.boundary[0])
        transcript.absorb_int(proof.boundary[1])
        alphas = (transcript.challenge_field(field),
                  transcript.challenge_field(field),
                  transcript.challenge_field(field))

        # FRI accepts the composition as low-degree.
        if not FriVerifier(self.fri_params).verify(
                proof.fri_proof, transcript=transcript):
            return False

        # Consistency: recompute Q from opened trace values at every
        # query position (both FRI halves) and compare to FRI's leaves.
        indices = fri_query_indices(
            self.fri_params, proof.fri_proof,
            transcript=_fri_entry_transcript(field, proof.trace_root,
                                             proof.boundary))
        if len(proof.trace_openings) != len(indices):
            return False
        half = big_n // 2
        for query_no, (index, paths) in enumerate(
                zip(indices, proof.trace_openings)):
            if len(paths) != 4:
                return False
            expected_positions = (index, (index + geom.blowup) % big_n,
                                  index + half,
                                  (index + half + geom.blowup) % big_n)
            for path, position in zip(paths, expected_positions):
                if path.index != position:
                    return False
                if not MerkleTree.verify(proof.trace_root, path):
                    return False
            round0 = proof.fri_proof.queries[query_no][0]
            got_low = geom.composition_value(
                index, paths[0].leaf, paths[1].leaf, alphas,
                proof.boundary)
            got_high = geom.composition_value(
                index + half, paths[2].leaf, paths[3].leaf, alphas,
                proof.boundary)
            if got_low != round0.point_path.leaf:
                return False
            if got_high != round0.negated_path.leaf:
                return False
        return True
