"""Tests for machine-description serialization."""

import json

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    ALL_MACHINES, DGX_A100, FOUR_NODE_DGX_A100, cluster_from_dict,
    cluster_to_dict, gpu_from_dict, gpu_to_dict, interconnect_from_dict,
    interconnect_to_dict, load_machine_file, machine_from_dict,
    machine_to_dict,
)


class TestRoundTrips:
    @pytest.mark.parametrize("machine", ALL_MACHINES, ids=lambda m: m.name)
    def test_machine(self, machine):
        assert machine_from_dict(machine_to_dict(machine)) == machine

    def test_gpu(self):
        assert gpu_from_dict(gpu_to_dict(DGX_A100.gpu)) == DGX_A100.gpu

    def test_interconnect(self):
        fabric = DGX_A100.interconnect
        assert interconnect_from_dict(interconnect_to_dict(fabric)) == \
            fabric

    def test_cluster(self):
        assert cluster_from_dict(cluster_to_dict(FOUR_NODE_DGX_A100)) == \
            FOUR_NODE_DGX_A100

    def test_json_serializable(self):
        text = json.dumps(cluster_to_dict(FOUR_NODE_DGX_A100))
        assert cluster_from_dict(json.loads(text)) == FOUR_NODE_DGX_A100


class TestValidation:
    def test_unknown_keys_rejected(self):
        data = gpu_to_dict(DGX_A100.gpu)
        data["turbo_mode"] = True
        with pytest.raises(HardwareModelError, match="unknown"):
            gpu_from_dict(data)

    def test_missing_keys_rejected(self):
        with pytest.raises(HardwareModelError, match="missing"):
            gpu_from_dict({"name": "x"})

    def test_invalid_values_still_validated(self):
        """Deserialization goes through the constructors' checks."""
        data = machine_to_dict(DGX_A100)
        data["gpu_count"] = 6
        with pytest.raises(HardwareModelError, match="power of two"):
            machine_from_dict(data)


class TestFiles:
    def test_load_machine(self, tmp_path):
        path = tmp_path / "machine.json"
        path.write_text(json.dumps(machine_to_dict(DGX_A100)))
        assert load_machine_file(str(path)) == DGX_A100

    def test_load_cluster(self, tmp_path):
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(cluster_to_dict(FOUR_NODE_DGX_A100)))
        assert load_machine_file(str(path)) == FOUR_NODE_DGX_A100

    def test_unknown_type(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"type": "quantum"}))
        with pytest.raises(HardwareModelError, match="unknown machine"):
            load_machine_file(str(path))

    def test_custom_machine_usable(self, tmp_path):
        """A hand-written description drives the cost model end to end."""
        from repro.field import GOLDILOCKS
        from repro.multigpu import UniNTTEngine
        from repro.sim import SimCluster

        description = {
            "type": "machine",
            "name": "my-lab-box",
            "gpu_count": 4,
            "gpu": {"name": "RTX-4090", "word_mul_per_s": 2.0e12,
                    "hbm_bandwidth": 1.0e12,
                    "hbm_capacity_bytes": 24 * 2**30},
            "interconnect": {"kind": "pcie-host",
                             "link_bandwidth": 32e9, "latency": 15e-6,
                             "peer_to_peer": False},
        }
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(description))
        machine = load_machine_file(str(path))
        cluster = SimCluster(GOLDILOCKS, 4)
        seconds = UniNTTEngine(cluster).estimate(machine, 1 << 20).total_s
        assert seconds > 0
