"""The proof-serving scheduler: a deterministic request-serving loop.

:class:`ProofServer` turns a stream of
:class:`~repro.serve.request.ProofRequest` records into completed
transforms over one simulated machine.  The loop is a discrete-event
simulation on a :class:`~repro.serve.clock.VirtualClock` — no wall
time anywhere — so the same workload replays bit-identically:

1. **Admit** every request whose arrival time has passed into the
   bounded :class:`~repro.serve.queue.AdmissionQueue`; refuse (and
   price the refusal) when the queue is full.
2. **Coalesce** the most urgent request with every compatible queued
   request (same field, size, direction) into one cross-request batch.
3. **Plan** via the keyed :class:`~repro.serve.cache.PlanCache`:
   choose ``replicate`` vs ``split`` by modeled batch seconds, with
   misses priced at :data:`~repro.serve.cache.PLAN_MISS_MESSAGES`.
4. **Stage twiddles** via the shared
   :class:`~repro.serve.cache.TwiddleLedger`: the first dispatch of a
   shape pays the table generation; later ones are charged zero
   recompute.
5. **Dispatch** through
   :class:`~repro.multigpu.batch_engine.BatchedDistributedNTT` against
   the shared simulated cluster, retrying transient faults with
   exponential backoff (every wasted attempt and every backoff wait is
   priced into that dispatch's duration).
6. **Advance** the clock by the dispatch's modeled duration and record
   per-request results.

Two optional layers harden the loop:

* **Durability** (``journal=WriteAheadJournal()``): every admission,
  rejection, shed, dispatch, emit, and completion is written to the
  :mod:`~repro.serve.durability` write-ahead journal *before* the
  crash point that could lose it, with periodic ``ServerSnapshot``
  checkpoints at quiescent points.  An injected ``server-crash@seq``
  fault (``crash_plan``) raises :class:`~repro.errors.ServerCrashError`
  the moment the journal reaches that sequence number; a
  :class:`~repro.serve.durability.RecoveryManager` then resumes the
  run bit-identically via ``serve(requests, resume=...)``.
* **Graceful degradation** (``degrade=DegradePolicy()``): per-engine
  circuit breakers with half-open probing, automatic fallback to a
  single-GPU cluster (zero collectives — no fabric fault reaches it)
  when the primary engine is breaker-open or retries are exhausted,
  and fault-rate-triggered shedding of the least-urgent queued
  requests.  See :mod:`repro.serve.degrade`.

Every decision emits a ``serve``-level trace event into the server's
shared trace, so :mod:`repro.analysis.tracecheck` can audit a serving
run exactly like any other execution.
"""

from __future__ import annotations

from repro.errors import (
    DeviceLostError, ServeError, ServerCrashError, ShardCorruptionError,
    TransientCommError,
)
from repro.field.presets import field_by_name
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel, Phase, Step
from repro.hw.machines import DGX_A100
from repro.hw.model import MachineModel
from repro.multigpu.batch_engine import BatchedDistributedNTT
from repro.serve.cache import PLAN_MISS_MESSAGES, PlanCache, TwiddleLedger
from repro.serve.clock import VirtualClock
from repro.serve.degrade import CircuitBreaker, DegradePolicy
from repro.serve.durability import (
    JOURNAL_MESSAGES, RECOVER_MESSAGES, REPLAY_MESSAGES_PER_RECORD,
    SNAPSHOT_MESSAGES, ResumeState, ServerSnapshot, WriteAheadJournal,
    output_digest,
)
from repro.runtime.loop import SharedCounter
from repro.serve.queue import AdmissionQueue
from repro.serve.report import DispatchRecord, ServeReport
from repro.serve.request import ProofRequest, RequestResult
from repro.sim.cluster import SimCluster
from repro.sim.faults import FaultPlan
from repro.sim.trace import Trace, TraceEvent

__all__ = ["DISPATCH_MESSAGES", "REJECT_MESSAGES", "InflightBatch",
           "ProofServer"]

#: Fabric latency units of fixed per-dispatch overhead (host-side batch
#: assembly plus the kernel-launch train).  This is the cost batching
#: amortizes: one coalesced dispatch of eight requests pays it once,
#: eight one-at-a-time dispatches pay it eight times.
DISPATCH_MESSAGES = 32

#: Fabric latency units one refused request costs — the front door does
#: work to say no (a real admission controller still parses, checks,
#: and answers the request it sheds).
REJECT_MESSAGES = 1

#: Errors a dispatch may retry (or divert to the fallback engine).
_RETRYABLE = (TransientCommError, ShardCorruptionError)


class InflightBatch:
    """One dispatched-but-uncommitted batch (between begin and commit).

    ``_dispatch_begin`` journals the dispatch intent and runs the
    engines; ``_dispatch_commit`` — at the batch's modeled completion
    time — emits the results and journals them.  The single-server
    loop commits immediately after advancing the clock, so the split
    is invisible there; the fleet holds the object while other
    replicas make progress, and *discards* it if its replica is fenced
    before the completion event fires (the orphaned dispatch record is
    then what journal failover replays).
    """

    def __init__(self, *, group: list[ProofRequest], batch_id: int,
                 strategy_label: str, total_vectors: int,
                 duration_s: float, attempts: int,
                 steps: tuple[Step, ...],
                 outputs: list[list[int]], start_s: float) -> None:
        self.group = group
        self.batch_id = batch_id
        self.strategy_label = strategy_label
        self.total_vectors = total_vectors
        self.duration_s = duration_s
        self.attempts = attempts
        self.steps = steps
        self.outputs = outputs
        self.start_s = start_s


class ProofServer:
    """Deterministic serving of transform requests on one machine.

    Parameters
    ----------
    machine:
        Machine preset the run is priced on (default DGX-A100).
    queue_capacity:
        Admission bound; arrivals beyond it are rejected (and priced).
    max_batch_requests:
        Most requests one cross-request batch may coalesce.
    batching:
        ``False`` serves strictly one request per dispatch — the
        baseline arm of the f21 benchmark.
    caching:
        ``False`` rebuilds plans and twiddles from scratch for every
        dispatch (so misses recur); the other f21 baseline knob.
    strategy:
        Pin ``"replicate"`` or ``"split"`` instead of letting the plan
        cache choose per batch.
    twiddle_capacity:
        LRU bound on resident twiddle tables (``None`` = unbounded).
    max_attempts:
        Bounded-retry limit per dispatch under injected faults.
    backoff_messages:
        Base fabric-latency units of exponential retry backoff.
    injector:
        Optional :class:`~repro.sim.faults.FaultInjector`; installed on
        the shared cluster so its collective counter spans the whole
        serving run (faults land mid-stream).
    journal:
        Optional :class:`~repro.serve.durability.WriteAheadJournal`.
        The journal lives *outside* the server (it survives a crash);
        a recovery server must be constructed with the same object.
    snapshot_every:
        Journal records between :class:`ServerSnapshot` checkpoints.
    crash_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` containing only
        ``server-crash`` specs; the server raises
        :class:`~repro.errors.ServerCrashError` when the journal
        reaches a listed sequence number.  Requires ``journal``.
    degrade:
        Optional :class:`~repro.serve.degrade.DegradePolicy` enabling
        circuit breakers, single-GPU fallback, and load shedding.
    trace:
        Optional shared :class:`~repro.sim.trace.Trace` to append to
        instead of a private one.  The fleet passes one trace to every
        replica so a single audit covers the whole fleet.
    batch_counter:
        Optional shared :class:`~repro.runtime.loop.SharedCounter` for
        batch ids.  With it, batch ids are globally unique across all
        servers drawing from the counter — the property the fleet's
        duplicate-completion tracecheck rule relies on.
    replica:
        Optional fleet replica index.  When set, every serve-level
        trace event this server emits carries a trailing
        ``replica=<n>`` token, which is how the shared-trace audit
        rules (journal gaplessness, suspicion resolution) attribute
        events to replicas.  ``None`` (the default) leaves the
        single-server event format byte-identical to every earlier
        release.
    """

    def __init__(self, machine: MachineModel = DGX_A100, *,
                 queue_capacity: int = 64,
                 max_batch_requests: int = 16,
                 batching: bool = True,
                 caching: bool = True,
                 strategy: str | None = None,
                 twiddle_capacity: int | None = None,
                 max_attempts: int = 3,
                 backoff_messages: int = 4,
                 injector=None,
                 journal: WriteAheadJournal | None = None,
                 snapshot_every: int = 8,
                 crash_plan: FaultPlan | None = None,
                 degrade: DegradePolicy | None = None,
                 trace: Trace | None = None,
                 batch_counter: SharedCounter | None = None,
                 replica: int | None = None) -> None:
        if max_batch_requests < 1:
            raise ServeError(
                f"max_batch_requests must be >= 1, got {max_batch_requests}")
        if max_attempts < 1:
            raise ServeError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_messages < 0:
            raise ServeError(
                f"backoff_messages must be >= 0, got {backoff_messages}")
        if snapshot_every < 1:
            raise ServeError(
                f"snapshot_every must be >= 1, got {snapshot_every}")
        crash_steps: frozenset[int] = frozenset()
        if crash_plan is not None:
            residual = tuple(f for f in crash_plan.faults
                             if f.kind != "server-crash")
            if residual:
                raise ServeError(
                    "crash_plan must contain only server-crash faults; "
                    "pass fabric faults via injector= instead (got "
                    f"{', '.join(f.label() for f in residual)})")
            crash_steps = frozenset(crash_plan.crash_steps())
        if crash_steps and journal is None:
            raise ServeError(
                "server-crash injection requires a write-ahead journal "
                "(pass journal=WriteAheadJournal())")
        self.machine = machine
        self.queue_capacity = queue_capacity
        self.max_batch_requests = max_batch_requests
        self.batching = batching
        self.caching = caching
        self.strategy = strategy
        self.twiddle_capacity = twiddle_capacity
        self.max_attempts = max_attempts
        self.backoff_messages = backoff_messages
        self.injector = injector
        self.journal = journal
        self.snapshot_every = snapshot_every
        self.degrade = degrade
        self.trace = trace if trace is not None else Trace()
        self.replica = replica
        self.plan_cache = PlanCache()
        self.twiddles = TwiddleLedger(max_tables=twiddle_capacity)
        self._batch_counter = batch_counter
        self._crash_steps = crash_steps
        self._clusters: dict[str, SimCluster] = {}
        self._fallback_clusters: dict[str, SimCluster] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._fault_window: list[int] = []
        self._batch_id = 0
        # Journal/snapshot/recovery phases are pure fabric messaging,
        # whose price is field-independent; one memoized model keeps
        # the bookkeeping cheap and deterministic.
        self._overhead_model = CostModel(machine, field_by_name("Goldilocks"))

    # -- infrastructure ------------------------------------------------------

    def _cluster(self, field: PrimeField) -> SimCluster:
        """One shared cluster per field, all writing the server's trace."""
        cluster = self._clusters.get(field.name)
        if cluster is None:
            cluster = SimCluster(field, self.machine.gpu_count,
                                 trace=self.trace,
                                 injector=self.injector)
            # Under fault injection, verify every exchange with the
            # random-linear-probe checksums so silent in-flight
            # corruption surfaces as ShardCorruptionError and is
            # retried rather than served.
            cluster.checksum_exchanges = self.injector is not None
            self._clusters[field.name] = cluster
        return cluster

    def _fallback_cluster(self, field: PrimeField) -> SimCluster:
        """A one-GPU cluster per field for breaker-open dispatches.

        It shares the server's trace (its work is audited like any
        other) but never the injector: the ``replicate`` strategy on
        one GPU issues zero collectives, so no fabric fault can reach
        a degraded dispatch.
        """
        cluster = self._fallback_clusters.get(field.name)
        if cluster is None:
            cluster = SimCluster(field, 1, trace=self.trace)
            self._fallback_clusters[field.name] = cluster
        return cluster

    def _breaker(self, engine: str) -> CircuitBreaker:
        breaker = self._breakers.get(engine)
        if breaker is None:
            breaker = CircuitBreaker(engine, self.degrade)
            self._breakers[engine] = breaker
        return breaker

    def _serve_event(self, kind: str, detail: str) -> None:
        if self.replica is not None:
            detail = f"{detail} replica={self.replica}"
        self.trace.record(TraceEvent(kind=kind, level="serve",
                                     detail=detail))

    def _next_batch_id(self) -> int:
        if self._batch_counter is not None:
            return self._batch_counter.next()
        batch_id = self._batch_id
        self._batch_id += 1
        return batch_id

    def _peek_batch_id(self) -> int:
        if self._batch_counter is not None:
            return self._batch_counter.peek
        return self._batch_id

    def _overhead_seconds(self, messages: int) -> float:
        return self._overhead_model.estimate(
            [Phase(name="serve-overhead", messages=messages)]).total_s

    def _journal_append(self, kind: str, payload: dict,
                        clock: VirtualClock, report: ServeReport) -> None:
        """WAL hook: append, price, trace, and maybe crash.

        The injected ``server-crash`` fires the moment the record whose
        sequence number it names has been appended — i.e. the journal
        always holds the record, the in-memory state change it guards
        may or may not have completed, and recovery must (and does)
        tolerate both.
        """
        if self.journal is None:
            return
        record = self.journal.append(kind, payload, t_s=clock.now_s)
        report.journal_records += 1
        report.journal_s += self._overhead_seconds(JOURNAL_MESSAGES)
        self._serve_event(
            "serve-journal", f"seq={record.seq} kind={kind}")
        if record.seq in self._crash_steps:
            raise ServerCrashError(
                f"injected server-crash at journal seq {record.seq} "
                f"({kind} record)", crash_seq=record.seq, report=report)

    # -- the loop ------------------------------------------------------------

    def serve(self, requests: list[ProofRequest],
              resume: ResumeState | None = None) -> ServeReport:
        """Run the workload to completion; returns the full account.

        ``resume`` is supplied by
        :class:`~repro.serve.durability.RecoveryManager` to continue a
        crashed run: requests the previous incarnation already handled
        (emitted, rejected, or shed) are skipped, orphans are
        re-admitted exactly once, and the clock resumes at the crash
        time plus the priced recovery downtime.
        """
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ServeError("workload has duplicate request ids")
        handled: set[int] = set(resume.handled_ids) if resume else set()
        requeued_ids = {r.request_id for r in resume.queued} \
            if resume else set()
        pending = sorted(
            (r for r in requests
             if r.request_id not in handled
             and r.request_id not in requeued_ids),
            key=lambda r: (r.arrival_s, r.request_id))
        clock = VirtualClock(resume.clock_s if resume else 0.0)
        queue = AdmissionQueue(self.queue_capacity)
        report = ServeReport(machine_name=self.machine.name,
                             offered=len(pending) + len(requeued_ids))
        if resume is not None:
            self._begin_recovery(resume, clock, queue, report)
        next_arrival = 0

        while True:
            # 1. admit everything that has arrived by now.
            while (next_arrival < len(pending)
                   and pending[next_arrival].arrival_s <= clock.now_s):
                request = pending[next_arrival]
                next_arrival += 1
                if queue.offer(request):
                    report.accepted += 1
                    self._serve_event(
                        "serve-accept",
                        f"request={request.request_id} "
                        f"queue={len(queue)}/{queue.capacity}")
                    self._journal_append(
                        "admit", {"request": request.to_record()},
                        clock, report)
                else:
                    report.rejected += 1
                    report.note_rejected(request.tenant_id)
                    report.rejection_s += self._rejection_seconds(request)
                    handled.add(request.request_id)
                    self._serve_event(
                        "serve-reject",
                        f"request={request.request_id} queue-full "
                        f"capacity={queue.capacity}")
                    self._journal_append(
                        "reject",
                        {"request_id": request.request_id,
                         "reason": "queue-full"}, clock, report)

            # 1b. degraded mode: shed the least-urgent backlog when the
            # fabric is faulting faster than retries absorb.
            if self.degrade is not None and not queue.empty:
                self._maybe_shed(queue, clock, report, handled)

            if queue.empty:
                if next_arrival >= len(pending):
                    break  # drained: nothing queued, nothing to come
                clock.advance_to(pending[next_arrival].arrival_s)
                continue

            # 2. pull the next dispatch group (EDF head + compatible).
            group = queue.take_batch(self.max_batch_requests,
                                     batching=self.batching)
            self._dispatch(group, clock, report, handled)
            self._maybe_snapshot(queue, clock, report, handled)

        report.makespan_s = clock.now_s
        return report

    def _rejection_seconds(self, request: ProofRequest) -> float:
        model = CostModel(self.machine, request.field)
        return model.estimate([Phase(name="serve-reject",
                                     messages=REJECT_MESSAGES)]).total_s

    # -- durability ----------------------------------------------------------

    def _begin_recovery(self, resume: ResumeState, clock: VirtualClock,
                        queue: AdmissionQueue,
                        report: ServeReport) -> None:
        """Resume a crashed run: warm caches, price downtime, requeue."""
        report.recoveries = 1
        report.recovered_requests = len(resume.queued)
        report.replayed_records = resume.replayed_records
        self._batch_id = max(self._batch_id, resume.next_batch_id)
        if self._batch_counter is not None:
            self._batch_counter.advance_to(resume.next_batch_id)
        # Warm the caches the snapshot recorded.  Entries are pure
        # functions of their keys, so re-materializing them restores
        # the crashed server's cache state exactly; the restore itself
        # is priced below as part of the recovery messages, not as
        # per-dispatch planning work.
        for machine_name, field_name, log_size, strategy \
                in resume.plan_keys:
            if machine_name == self.machine.name:
                self.plan_cache.lookup(
                    self.machine, field_by_name(field_name),
                    int(log_size), strategy)
        for field_name, n, direction in resume.twiddle_shapes:
            self.twiddles.prepare(field_by_name(field_name), int(n),
                                  direction)
        messages = (RECOVER_MESSAGES
                    + REPLAY_MESSAGES_PER_RECORD * resume.replayed_records)
        downtime = self._overhead_seconds(messages)
        report.recovery_s += downtime
        clock.advance_by(downtime)
        self.trace.record(TraceEvent(
            kind="fault", level="resilience",
            detail=f"server-crash@{resume.crash_seq}"))
        self._serve_event(
            "serve-recover",
            f"journal-seq={resume.crash_seq} "
            f"replayed={resume.replayed_records} "
            f"requeued={len(resume.queued)}")
        queue.restore(resume.queued)
        for request in resume.queued:
            self._serve_event(
                "serve-accept",
                f"request={request.request_id} recovered "
                f"queue={len(queue)}/{queue.capacity}")
        self._journal_append(
            "recover",
            {"crash_seq": resume.crash_seq,
             "replayed": resume.replayed_records,
             "requeued": [r.request_id for r in resume.queued]},
            clock, report)

    def _maybe_snapshot(self, queue: AdmissionQueue, clock: VirtualClock,
                        report: ServeReport, handled: set[int]) -> None:
        """Checkpoint at a quiescent point (between dispatches)."""
        if self.journal is None \
                or self.journal.records_since_snapshot < self.snapshot_every:
            return
        snapshot = ServerSnapshot(
            t_s=clock.now_s,
            queued=tuple(r.to_record() for r in queue.snapshot_items()),
            handled_ids=tuple(sorted(handled)),
            next_batch_id=self._peek_batch_id(),
            plan_keys=self.plan_cache.keys(),
            twiddle_shapes=self.twiddles.shapes())
        report.snapshots += 1
        report.journal_s += self._overhead_seconds(SNAPSHOT_MESSAGES)
        self._serve_event(
            "serve-snapshot",
            f"queued={len(queue)} handled={len(handled)} "
            f"next-batch={self._peek_batch_id()}")
        self._journal_append("snapshot", snapshot.to_payload(), clock,
                             report)

    # -- degradation ---------------------------------------------------------

    def _fault_rate(self) -> float:
        if not self._fault_window:
            return 0.0
        return sum(self._fault_window) / len(self._fault_window)

    def _note_dispatch_outcome(self, failures: int) -> None:
        if self.degrade is None:
            return
        self._fault_window.append(1 if failures else 0)
        excess = len(self._fault_window) - self.degrade.window
        if excess > 0:
            del self._fault_window[:excess]

    def _maybe_shed(self, queue: AdmissionQueue, clock: VirtualClock,
                    report: ServeReport, handled: set[int]) -> None:
        policy = self.degrade
        rate = self._fault_rate()
        high_water = int(policy.shed_queue_fraction * queue.capacity)
        high_water = max(1, high_water)
        if rate < policy.shed_fault_rate or len(queue) <= high_water:
            return
        for request in queue.drop_worst(len(queue) - high_water):
            report.shed += 1
            report.note_shed(request.tenant_id)
            report.shed_s += self._rejection_seconds(request)
            handled.add(request.request_id)
            self._serve_event(
                "serve-shed",
                f"request={request.request_id} "
                f"priority={request.priority} fault-rate={rate:.2f} "
                f"queue={len(queue)}/{queue.capacity}")
            self._journal_append(
                "shed",
                {"request_id": request.request_id,
                 "fault_rate": round(rate, 4)}, clock, report)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, group: list[ProofRequest], clock: VirtualClock,
                  report: ServeReport, handled: set[int]) -> None:
        """Begin, advance the clock by the modeled duration, commit."""
        inflight = self._dispatch_begin(group, clock, report)
        clock.advance_by(inflight.duration_s)
        self._dispatch_commit(inflight, clock, report, handled)

    def _dispatch_begin(self, group: list[ProofRequest],
                        clock: VirtualClock,
                        report: ServeReport) -> InflightBatch:
        head = group[0]
        field = head.field
        n = head.n
        vectors_per_request = [r.batch for r in group]
        total_vectors = sum(vectors_per_request)
        batch_id = self._next_batch_id()

        breaker = self._breaker(field.name) if self.degrade is not None \
            else None
        probing = False
        use_fallback = False
        if breaker is not None:
            before = breaker.state
            state = breaker.poll(clock.now_s)
            if state != before:
                self._serve_event(
                    "serve-breaker",
                    f"engine={field.name} {before}->{state} "
                    f"batch={batch_id}")
            if state == "open":
                use_fallback = True
            elif state == "half-open":
                probing = True
                report.breaker_probes += 1

        # Fresh caches per dispatch when caching is disabled, so the
        # planning and twiddle misses recur honestly.
        plan_cache = self.plan_cache if self.caching else PlanCache()
        twiddles = self.twiddles if self.caching \
            else TwiddleLedger(max_tables=self.twiddle_capacity)

        entry = None
        strategy_label = "single-gpu"
        if not use_fallback:
            entry, plan_misses = plan_cache.choose(
                self.machine, field, head.log_size, total_vectors,
                force=self.strategy)
            strategy_label = entry.strategy
            plan_hits = len(("replicate", "split")) - plan_misses
            report.plan_hits += plan_hits
            report.plan_misses += plan_misses
            self._serve_event(
                "serve-cache",
                f"batch={batch_id} plan-"
                f"{'hit' if plan_misses == 0 else 'miss'} "
                f"strategy={entry.strategy}")
        else:
            plan_misses = 0

        twiddle_phase, twiddle_hit = twiddles.prepare(
            field, n, head.direction)
        if self.caching:
            stats = twiddles.stats()
            report.twiddle_hits = stats["hits"]
            report.twiddle_misses = stats["misses"]
            report.twiddle_evictions = stats["evictions"]
        else:
            report.twiddle_misses += twiddles.stats()["misses"]
        self._serve_event(
            "serve-cache",
            f"batch={batch_id} twiddle-"
            f"{'hit' if twiddle_hit else 'miss'} "
            f"n={n} direction={head.direction}")

        # Assemble the overhead phases this dispatch owes.
        steps: list[Step] = [Phase(name="serve-dispatch-overhead",
                                   messages=DISPATCH_MESSAGES)]
        if plan_misses:
            steps.append(Phase(name="serve-plan-miss",
                               messages=plan_misses * PLAN_MISS_MESSAGES))
        if twiddle_phase is not None:
            steps.append(twiddle_phase)

        self._serve_event(
            "serve-dispatch",
            f"batch={batch_id} "
            f"ids={','.join(str(r.request_id) for r in group)} "
            f"requests={len(group)} "
            f"vectors={total_vectors} strategy={strategy_label} "
            f"n={n} field={field.name}")

        # WAL: intent is durable before the engines run, so a crash
        # mid-batch leaves an orphaned dispatch record the recovery
        # replay re-admits.
        self._journal_append(
            "dispatch",
            {"batch_id": batch_id,
             "request_ids": [r.request_id for r in group],
             "strategy": strategy_label}, clock, report)

        # 3. run, retrying transient faults from the host-side inputs.
        batch_inputs: list[list[int]] = []
        for request in group:
            batch_inputs.extend(request.vectors())
        outputs: list[list[int]] | None = None
        attempts = 0
        failures = 0
        max_attempts = 1 if probing else self.max_attempts
        retryable = _RETRYABLE + (DeviceLostError,) \
            if self.degrade is not None else _RETRYABLE
        if not use_fallback:
            engine = BatchedDistributedNTT(
                self._cluster(field), strategy=entry.strategy,
                tile=entry.tile)
            profile = list(engine.forward_profile(n, total_vectors))
            steps.extend(profile)
            while outputs is None:
                attempts += 1
                try:
                    if head.direction == "inverse":
                        outputs = engine.inverse(batch_inputs)
                    else:
                        outputs = engine.forward(batch_inputs)
                except retryable as error:
                    failures += 1
                    report.retries += 1
                    # The wasted attempt is charged in full (deliberate
                    # upper bound), plus an exponential backoff wait.
                    backoff = self.backoff_messages * (1 << (attempts - 1))
                    if backoff:
                        steps.append(Phase(name="serve-retry-backoff",
                                           messages=backoff))
                    if breaker is not None:
                        before = breaker.state
                        if breaker.record_failure(clock.now_s):
                            report.breaker_trips += 1
                            self._serve_event(
                                "serve-breaker",
                                f"engine={field.name} {before}->open "
                                f"batch={batch_id} "
                                f"failures={breaker.failure_streak}")
                    diverting = self.degrade is not None and (
                        isinstance(error, DeviceLostError)
                        or (breaker is not None
                            and breaker.state == "open")
                        or attempts >= max_attempts)
                    detail = (f"batch={batch_id} attempt={attempts} "
                              f"{type(error).__name__}")
                    if diverting:
                        detail += " -> single-gpu-fallback"
                    self.trace.record(TraceEvent(
                        kind="retry", level="resilience", detail=detail))
                    if diverting:
                        use_fallback = True
                        break
                    if attempts >= max_attempts:
                        exhausted = ServeError(
                            f"batch {batch_id} failed after {attempts} "
                            f"attempts: {error}")
                        exhausted.report = report
                        raise exhausted from error
                    steps.extend(profile)
            if breaker is not None and outputs is not None:
                before = breaker.state
                if breaker.record_success():
                    self._serve_event(
                        "serve-breaker",
                        f"engine={field.name} {before}->closed "
                        f"batch={batch_id}")

        if outputs is None:
            # Breaker-open / probe-failed / retry-exhausted: run on the
            # fallback cluster.  Replicate on one GPU issues zero
            # collectives, so the faulty fabric cannot touch it; the
            # full (slower) profile is charged honestly.
            strategy_label = "single-gpu"
            fallback = BatchedDistributedNTT(
                self._fallback_cluster(field), strategy="replicate")
            steps.extend(fallback.forward_profile(n, total_vectors))
            attempts += 1
            if head.direction == "inverse":
                outputs = fallback.inverse(batch_inputs)
            else:
                outputs = fallback.forward(batch_inputs)
            report.fallback_dispatches += 1
            self._serve_event(
                "serve-breaker",
                f"engine={field.name} fallback batch={batch_id} "
                f"state={breaker.state if breaker else 'n/a'}")

        self._note_dispatch_outcome(failures)

        duration = CostModel(self.machine, field).estimate(steps).total_s
        return InflightBatch(
            group=group, batch_id=batch_id,
            strategy_label=strategy_label, total_vectors=total_vectors,
            duration_s=duration, attempts=attempts, steps=tuple(steps),
            outputs=outputs, start_s=clock.now_s)

    def _dispatch_commit(self, inflight: InflightBatch,
                         clock: VirtualClock, report: ServeReport,
                         handled: set[int]) -> None:
        """Emit an in-flight batch's results at its completion time."""
        group = inflight.group
        head = group[0]
        batch_id = inflight.batch_id
        strategy_label = inflight.strategy_label
        report.dispatches.append(DispatchRecord(
            batch_id=batch_id, field_name=head.field_name,
            log_size=head.log_size, direction=head.direction,
            strategy=strategy_label, requests=len(group),
            vectors=inflight.total_vectors,
            duration_s=inflight.duration_s,
            attempts=inflight.attempts, steps=inflight.steps,
            engine="single-gpu" if strategy_label == "single-gpu"
            else "multi-gpu"))

        # 4. slice outputs back to their requests and record results.
        # Each result is appended to the report *before* its emit
        # record is journaled, so a crash between the two leaves the
        # client-visible result set and the journal in agreement.
        cursor = 0
        for request in group:
            lanes = inflight.outputs[cursor:cursor + request.batch]
            cursor += request.batch
            result = RequestResult(
                request=request,
                outputs=tuple(tuple(lane) for lane in lanes),
                start_s=inflight.start_s, finish_s=clock.now_s,
                batch_id=batch_id, strategy=strategy_label,
                shared_batch=len(group))
            report.results.append(result)
            report.completed += 1
            handled.add(request.request_id)
            if not result.deadline_met:
                report.deadline_misses += 1
            self._journal_append(
                "emit",
                {"request_id": request.request_id,
                 "batch_id": batch_id,
                 "digest": output_digest(result.outputs)},
                clock, report)
        self._serve_event(
            "serve-complete",
            f"batch={batch_id} finish={clock.now_s:.6e} "
            f"attempts={inflight.attempts}")
        self._journal_append("complete", {"batch_id": batch_id},
                             clock, report)
