"""Tests for proof-system workload profiles."""

import pytest

from repro.errors import ProverError
from repro.field import BN254_FR
from repro.hw import DGX_A100
from repro.multigpu import UniNTTEngine
from repro.sim import SimCluster
from repro.zkp import (
    ALL_PROFILES, EndToEndModel, GROTH16_PROFILE, PLONK_PROFILE,
    ProofSystemProfile, TransformOp, profile_by_name,
)


class TestProfiles:
    def test_groth16_matches_qap(self):
        """The profile's recipe equals what QAP.witness_polynomials runs."""
        from repro.zkp import QAP, square_chain

        r1cs, _ = square_chain(BN254_FR, steps=6)
        qap = QAP(r1cs)
        assert GROTH16_PROFILE.transform_count == qap.transform_count
        assert GROTH16_PROFILE.msm_count == len(qap.msm_sizes)
        # 3 INTTs, then 3 coset NTTs, then 1 coset INTT.
        kinds = [(op.inverse, op.coset) for op in GROTH16_PROFILE.transforms]
        assert kinds == [(True, False)] * 3 + [(False, True)] * 3 \
            + [(True, True)]

    def test_plonk_has_extended_domain(self):
        factors = {op.size_factor for op in PLONK_PROFILE.transforms}
        assert factors == {1, 4}
        assert PLONK_PROFILE.msm_count == 9

    def test_concrete_sizes(self):
        assert GROTH16_PROFILE.transform_sizes(1024) == [1024] * 7
        plonk_sizes = PLONK_PROFILE.transform_sizes(1024)
        assert plonk_sizes.count(4096) == 5
        assert PLONK_PROFILE.msm_sizes(8) == [8] * 9

    def test_lookup(self):
        assert profile_by_name("plonk") is PLONK_PROFILE
        with pytest.raises(KeyError, match="no profile"):
            profile_by_name("stark")

    def test_validation(self):
        with pytest.raises(ProverError, match="size_factor"):
            TransformOp(inverse=False, coset=False, size_factor=3)
        with pytest.raises(ProverError, match="at least"):
            ProofSystemProfile(name="x", transforms=(),
                               msm_size_factors=(1,))

    def test_names_unique(self):
        names = [p.name for p in ALL_PROFILES]
        assert len(names) == len(set(names))


class TestProfiledPipeline:
    def _model(self, profile):
        cluster = SimCluster(BN254_FR, 8)
        return EndToEndModel(DGX_A100, UniNTTEngine(cluster),
                             profile=profile)

    def test_plonk_costs_more_than_groth16(self):
        """More transforms, bigger domains, more commitments."""
        n = 1 << 20
        groth = self._model(GROTH16_PROFILE).proof_cost(n)
        plonk = self._model(PLONK_PROFILE).proof_cost(n)
        assert plonk.ntt_s > groth.ntt_s
        assert plonk.msm_s > groth.msm_s

    def test_unintt_still_wins_under_plonk(self):
        from repro.multigpu import SingleGpuEngine

        n = 1 << 20
        cluster = SimCluster(BN254_FR, 8)
        sota = EndToEndModel(DGX_A100, SingleGpuEngine(cluster),
                             profile=PLONK_PROFILE).proof_cost(n)
        uni = self._model(PLONK_PROFILE).proof_cost(n)
        assert uni.total_s < sota.total_s
        assert uni.ntt_fraction() < sota.ntt_fraction()
