"""F19: measured field-backend comparison (pure Python vs numpy).

Unlike the cost-model benchmarks this one times real transforms: the
same radix-2 Goldilocks NTT under each registered compute backend.  The
persisted report is the acceptance artifact for the backend layer — at
n = 2^14 the vectorized backend must be at least 5x faster than the
pure-Python reference.
"""

import pytest

from repro.bench import backend_comparison
from repro.field import numpy_available


def test_f19_backend_comparison(benchmark, emit):
    table = benchmark.pedantic(backend_comparison, rounds=1, iterations=1)
    emit("F19_backends",
         "F19: field backend comparison (radix-2 NTT, measured)", table)
    if not numpy_available():
        pytest.skip("numpy unavailable: python-only column recorded")
    headers, rows = table
    speedups = {row[0]: float(str(row[-1]).rstrip("x")) for row in rows}
    assert speedups[14] >= 5.0, (
        f"2^14 Goldilocks speedup {speedups[14]}x below the 5x target")
