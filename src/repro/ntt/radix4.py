"""Recursive radix-4 NTT.

Radix-4 halves the number of twiddle multiplications per output compared
to radix-2 and is what production GPU kernels use inside a warp (fewer
synchronizations per element).  We implement the textbook recursive
decimation-in-time form: split the input by residue mod 4, transform the
four subsequences, and combine with the 4-point DFT matrix whose only
non-trivial constant is ``J = w^(n/4)`` (a primitive 4th root, J^2 = -1).

Odd powers of two fall back to one radix-2 split at the top.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.field.vector import vec_add, vec_mul, vec_scale, vec_sub
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["ntt_radix4", "intt_radix4", "radix4_multiply_count"]


def _radix4_recursive(field: PrimeField, values: list[int], root: int,
                      cache: TwiddleCache) -> list[int]:
    n = len(values)
    p = field.modulus
    if n == 1:
        return values
    if n == 2:
        a, b = values
        return [(a + b) % p, (a - b) % p]
    # Every power of two >= 4 is divisible by 4; odd powers bottom out in
    # size-2 sub-problems handled by the plain butterfly above.
    quarter = n // 4
    root4 = pow(root, 4, p)
    subs = [_radix4_recursive(field, values[r::4], root4, cache)
            for r in range(4)]
    j_const = pow(root, quarter, p)  # primitive 4th root: j^2 = -1
    w1 = cache.powers(field, root, quarter)
    # The whole combine level as bulk vector ops over the active backend:
    # a_r = subs[r] * w^(r*k), then the 4-point DFT on (a0, a1, a2, a3).
    w2 = vec_mul(field, w1, w1)
    a0 = subs[0]
    a1 = vec_mul(field, subs[1], w1)
    a2 = vec_mul(field, subs[2], w2)
    a3 = vec_mul(field, subs[3], vec_mul(field, w2, w1))
    s02 = vec_add(field, a0, a2)
    d02 = vec_sub(field, a0, a2)
    s13 = vec_add(field, a1, a3)
    d13 = vec_scale(field, vec_sub(field, a1, a3), j_const)
    return (vec_add(field, s02, s13) + vec_add(field, d02, d13)
            + vec_sub(field, s02, s13) + vec_sub(field, d02, d13))


def ntt_radix4(field: PrimeField, values: Sequence[int],
               cache: TwiddleCache | None = None,
               root: int | None = None) -> list[int]:
    """Forward NTT via recursive radix-4; natural order in and out."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    w = field.root_of_unity(n) if root is None else root
    return _radix4_recursive(field, list(values), w, cache)


def intt_radix4(field: PrimeField, values: Sequence[int],
                cache: TwiddleCache | None = None,
                root: int | None = None) -> list[int]:
    """Inverse NTT via recursive radix-4 (includes 1/n scaling)."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    w = field.root_of_unity(n) if root is None else root
    out = _radix4_recursive(field, list(values), field.inv(w), cache)
    return vec_scale(field, out, field.inv(n % field.modulus))


def radix4_multiply_count(n: int) -> int:
    """Twiddle multiplications a radix-4 transform of size n performs.

    Follows the recursion of :func:`ntt_radix4`: a radix-4 combine costs
    3 twiddle multiplies per group of 4 outputs (``T(n) = 4 T(n/4) +
    3n/4``; size-2 butterflies are multiplication-free).  Fewer than
    radix-2's ``(n/2) log2 n``; the cost model uses the difference to
    credit radix fusion.
    """
    if n <= 2:
        return 0
    return 4 * radix4_multiply_count(n // 4) + 3 * (n // 4)
