"""F8: multi-GPU scaling and the headline geomean speedups."""

from repro.bench import headline_speedups, multi_gpu_scaling


def test_f8_scaling(benchmark, emit):
    table = benchmark(multi_gpu_scaling)
    emit("F8_multi_gpu_scaling",
         "F8: NTT time vs GPU count (DGX-A100, BLS12-381-Fr)", table)


def test_f8_headline(benchmark, emit):
    table = benchmark(headline_speedups)
    emit("F8_headline_speedups",
         "F8 summary: geomean UniNTT speedups (paper abstract: 4.26x avg)",
         table)
