"""Reference O(n^2) transforms.

These are the ground truth every fast engine is tested against.  They
implement the textbook definitions directly with no permutations,
caching, or decompositions, so a disagreement always indicts the fast
path.

Conventions (used across the whole library):

* forward: ``X[k] = sum_j x[j] * w^(j*k)`` with ``w`` a primitive n-th
  root of unity;
* inverse: ``x[j] = n^-1 * sum_k X[k] * w^(-j*k)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField

__all__ = ["dft", "idft", "naive_cyclic_convolution", "naive_negacyclic_convolution"]


def dft(field: PrimeField, values: Sequence[int], root: int | None = None) -> list[int]:
    """Forward DFT over GF(p) by the definition; O(n^2).

    ``root`` defaults to the field's primitive n-th root of unity.
    """
    n = len(values)
    if n == 0:
        raise NTTError("cannot transform an empty vector")
    p = field.modulus
    w = field.root_of_unity(n) if root is None else root
    out = []
    for k in range(n):
        wk = pow(w, k, p)
        acc = 0
        term = 1
        for v in values:
            acc += v * term
            term = term * wk % p
        out.append(acc % p)
    return out


def idft(field: PrimeField, values: Sequence[int], root: int | None = None) -> list[int]:
    """Inverse DFT by the definition; O(n^2)."""
    n = len(values)
    if n == 0:
        raise NTTError("cannot transform an empty vector")
    w = field.root_of_unity(n) if root is None else root
    spectrum = dft(field, values, root=field.inv(w))
    n_inv = field.inv(n % field.modulus)
    return [v * n_inv % field.modulus for v in spectrum]


def naive_cyclic_convolution(field: PrimeField, a: Sequence[int],
                             b: Sequence[int]) -> list[int]:
    """Cyclic convolution ``c[k] = sum_{i+j = k mod n} a[i] b[j]``; O(n^2)."""
    n = len(a)
    if len(b) != n:
        raise NTTError(f"convolution operands must match: {n} vs {len(b)}")
    p = field.modulus
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[(i + j) % n] = (out[(i + j) % n] + ai * bj) % p
    return out


def naive_negacyclic_convolution(field: PrimeField, a: Sequence[int],
                                 b: Sequence[int]) -> list[int]:
    """Negacyclic convolution: wrap-around terms enter with a minus sign.

    This is multiplication in ``GF(p)[x] / (x^n + 1)``, the ring used by
    Ring-LWE style systems and by zero-padding-free polynomial products.
    """
    n = len(a)
    if len(b) != n:
        raise NTTError(f"convolution operands must match: {n} vs {len(b)}")
    p = field.modulus
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            if k < n:
                out[k] = (out[k] + ai * bj) % p
            else:
                out[k - n] = (out[k - n] - ai * bj) % p
    return out
