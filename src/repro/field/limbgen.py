"""Limb-schedule codegen for the multi-limb Montgomery backend.

A NumPy ``uint64`` lane cannot hold the 128-bit product of two 64-bit
operands, so fields wider than 64 bits are vectorized by splitting each
element into *sub-32-bit limbs* spread across uint64 lanes and running
a lazy-carry CIOS Montgomery multiply over the limb planes.  How many
limbs, how wide, and how much carry headroom remains is a pure function
of the modulus — this module derives that **limb schedule** once, as
data, so the kernel in :mod:`repro.field.multilimb`, the docs in
``docs/FIELDS.md``, and ``repro info`` all describe the same numbers.

The module is deliberately stdlib-only (no numpy import): the schedule
is inspectable from ``repro info`` even on an interpreter without the
optional dependency.

>>> sched = generate_schedule(2**255 - 19)
>>> sched.limb_bits, sched.limbs
(29, 9)
>>> sched.r == 1 << (29 * 9)
True
>>> (sched.n_prime * (2**255 - 19)) % sched.base == sched.base - 1
True
"""

from __future__ import annotations

import dataclasses
from typing import Callable

__all__ = [
    "LimbSchedule", "generate_schedule", "pick_limb_bits",
    "describe_schedule", "emit_montmul_source", "compile_montmul",
]


def pick_limb_bits(p: int) -> tuple[int, int]:
    """Choose ``(limb_bits, limbs)`` for modulus ``p``.

    The kernel accumulates lazily: during one CIOS round an accumulator
    lane absorbs up to ``2L + 2`` products of ``limb_bits``-wide values
    (with one extra bit of input laziness) before any carry is
    propagated, so the widest safe limb is the largest ``k`` with

        2k + 1 + ceil_log2(2L + 2) <= 64

    while still covering the modulus with headroom (``k*L`` must exceed
    ``p.bit_length() + 1`` so that ``R = 2^(k*L) > 4p``, the bound the
    semi-lazy butterfly chain relies on).

    >>> pick_limb_bits(
    ...     21888242871839275222246405745257275088548364400416034343698204186575808495617)
    (29, 9)
    """
    for k in range(32, 8, -1):
        limbs = -(-p.bit_length() // k)
        need = 2 * k + 1 + (2 * limbs + 2).bit_length()
        if need <= 64 and k * limbs > p.bit_length() + 1:
            return k, limbs
    raise ValueError(f"no viable limb schedule for a "
                     f"{p.bit_length()}-bit modulus")


@dataclasses.dataclass(frozen=True)
class LimbSchedule:
    """Everything the multi-limb CIOS kernel needs, as plain integers.

    The fields mirror :class:`repro.field.montgomery.MontgomeryContext`
    (same ``n' = -p^-1 mod base`` and ``r2 = R^2 mod p`` definitions)
    but at limb granularity ``base = 2^limb_bits`` instead of ``2^64``.
    """

    modulus: int          #: the prime p
    limb_bits: int        #: k — bits per limb (sub-32 by construction)
    limbs: int            #: L — number of limb planes per element
    base: int             #: 2^k, the limb radix
    mask: int             #: 2^k - 1
    r: int                #: R = 2^(k*L), the Montgomery radix
    r2: int               #: R^2 mod p, for entering Montgomery form
    n_prime: int          #: -p^-1 mod base (per-round CIOS multiplier)
    p_limbs: tuple[int, ...]      #: p split into L limbs, little-endian
    words: int            #: 64-bit words per element for byte packing
    headroom_bits: int    #: unused accumulator bits at the lazy bound
    max_lazy_stages: int  #: butterfly stages before (2s+1)p reaches R

    @property
    def fmt(self) -> str:
        """Lane-format tag, e.g. ``limb29x9`` (keys twiddle caches)."""
        return f"limb{self.limb_bits}x{self.limbs}"


def generate_schedule(p: int) -> LimbSchedule:
    """Derive the full limb schedule for an odd modulus ``p``.

    >>> s = generate_schedule(
    ...     52435875175126190479447740508185965837690552500527637822603658699938581184513)
    >>> s.fmt
    'limb29x9'
    >>> s.r > 4 * s.modulus
    True
    >>> sum(l << (29 * i) for i, l in enumerate(s.p_limbs)) == s.modulus
    True
    >>> s.max_lazy_stages >= 32
    True
    """
    if p % 2 == 0 or p < 3:
        raise ValueError("multi-limb schedules require an odd modulus")
    k, limbs = pick_limb_bits(p)
    base = 1 << k
    r = 1 << (k * limbs)
    # Worst lazy accumulator: 2L products of (2^(k+1))(2^k) plus carry
    # slack — the same bound pick_limb_bits solved for.
    acc_bits = 2 * k + 1 + (2 * limbs + 2).bit_length()
    # The semi-lazy butterfly chain grows values by 2p per stage
    # (B_s = (2s+1)p), so the deepest transform before overflow is
    # the largest s with (2s+1)p < R.
    max_stages = (r // p - 1) // 2
    return LimbSchedule(
        modulus=p,
        limb_bits=k,
        limbs=limbs,
        base=base,
        mask=base - 1,
        r=r,
        r2=r * r % p,
        n_prime=(-pow(p, -1, base)) % base,
        p_limbs=tuple((p >> (k * i)) & (base - 1) for i in range(limbs)),
        words=(k * limbs + 63) // 64,
        headroom_bits=64 - acc_bits,
        max_lazy_stages=max_stages,
    )


def describe_schedule(p: int, name: str | None = None) -> str:
    """Human-readable schedule summary (used by ``repro info``).

    >>> print(describe_schedule(2**255 - 19, "ed25519").splitlines()[0])
    ed25519: 255-bit modulus -> 9 limbs x 29 bits (format limb29x9)
    """
    s = generate_schedule(p)
    label = name or f"p={p}"
    lines = [
        f"{label}: {p.bit_length()}-bit modulus -> "
        f"{s.limbs} limbs x {s.limb_bits} bits (format {s.fmt})",
        f"  R = 2^{s.limb_bits * s.limbs}, n' = {s.n_prime:#x}, "
        f"{s.words} packed 64-bit words/element",
        f"  lazy headroom {s.headroom_bits} bits; "
        f"butterfly chain safe to {s.max_lazy_stages} stages "
        f"(2^{s.max_lazy_stages} points); "
        f"exit: Barrett + 2 conditional subtracts",
    ]
    return "\n".join(lines)


def emit_montmul_source(schedule: LimbSchedule,
                        func_name: str = "montmul_lazy") -> str:
    """Emit unrolled numpy source for this schedule's CIOS multiply.

    The emitted function is the per-field specialization of the lazy
    CIOS loop: one round per limb, constants baked in.  ``a`` may carry
    lazy limbs (``<= 2^k + 2^(k-22)``-ish); ``b`` must be canonical
    (this is always a twiddle/constant table).  The result is the view
    ``t[L:2L]`` of the scratch — value ``< 2p`` with lazy limbs — valid
    until the next call on the same scratch.

    >>> src = emit_montmul_source(generate_schedule(2**255 - 19))
    >>> src.count("def montmul_lazy")
    1
    >>> src.count("np.right_shift") == 9
    True
    """
    L = schedule.limbs
    lines = [
        f"def {func_name}(np, p_col, a, b, t, prod, m):",
        f'    """Lazy CIOS for {schedule.fmt} '
        f"(p of {schedule.modulus.bit_length()} bits); "
        'returns the view t[L:2L]."""',
        f"    mask = np.uint64({schedule.mask:#x})",
        f"    sh = np.uint64({schedule.limb_bits})",
        f"    nprime = np.uint64({schedule.n_prime:#x})",
        "    # round 0: write the first partial product directly.  The",
        "    # result's top row is never accumulated into (the lazy",
        "    # value fits below it) but callers may normalize the",
        "    # returned view in place, so it alone needs re-zeroing.",
        "    np.multiply(a, b[0], out=t[:%d])" % L,
        "    t[%d].fill(0)" % (2 * L - 1),
        "    np.multiply(t[0], nprime, out=m)",
        "    np.bitwise_and(m, mask, out=m)",
        "    np.multiply(p_col, m, out=prod)",
        "    t[:%d] += prod" % L,
        "    np.right_shift(t[0], sh, out=m)",
        "    t[1] += m",
    ]
    for i in range(1, L):
        # Row t[i+L-1] is first touched in round i: write it instead of
        # accumulating into it, so the scratch never needs a zero fill
        # (a full-width memset per call, pure memory traffic).
        lines += [
            f"    # round {i}",
            f"    np.multiply(a, b[{i}], out=prod)",
            f"    t[{i}:{i + L - 1}] += prod[:{L - 1}]",
            f"    np.copyto(t[{i + L - 1}], prod[{L - 1}])",
            f"    np.multiply(t[{i}], nprime, out=m)",
            "    np.bitwise_and(m, mask, out=m)",
            "    np.multiply(p_col, m, out=prod)",
            f"    t[{i}:{i + L}] += prod",
            f"    np.right_shift(t[{i}], sh, out=m)",
            f"    t[{i + 1}] += m",
        ]
    lines.append(f"    return t[{L}:{2 * L}]")
    return "\n".join(lines) + "\n"


def compile_montmul(schedule: LimbSchedule) -> Callable:
    """Compile :func:`emit_montmul_source` and return the function.

    The kernel calls the compiled specialization; ``repro info`` and
    the docs show the emitted source, so what runs and what is
    documented cannot drift apart.
    """
    source = emit_montmul_source(schedule)
    namespace: dict = {}
    exec(compile(source, f"<limbgen:{schedule.fmt}>", "exec"), namespace)
    return namespace["montmul_lazy"]
