"""F10: ablation of the uniform optimizations."""

from repro.bench import ablation


def test_f10_ablation(benchmark, emit):
    table = benchmark(ablation)
    emit("F10_ablation",
         "F10: optimization ablation (DGX-A100, 2^24 BLS12-381-Fr)", table)
