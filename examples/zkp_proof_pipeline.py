"""End-to-end zero-knowledge proof generation.

Builds a real R1CS circuit, runs the full Groth16-style prover over
BN254 (7 NTTs + 4 Pippenger MSMs on actual curve points), checks the
proof, and then prices the same pipeline at production scale on a
simulated DGX-A100 under the four system configurations the paper's
motivation contrasts.

Run:  python examples/zkp_proof_pipeline.py
"""

import time

from repro.bench import end_to_end, format_table
from repro.field import BN254_FR
from repro.hw import DGX_A100
from repro.zkp import (
    Prover, QAP, inner_product, square_chain, trusted_setup,
)


def functional_proof() -> None:
    """Generate and check a real (small) proof."""
    print("building circuit: knowledge of x with x^(2^24) = y ...")
    r1cs, witness = square_chain(BN254_FR, steps=24)
    qap = QAP(r1cs)
    print(f"  {len(r1cs.constraints)} constraints -> domain size "
          f"{qap.domain.size}")

    tau = 0x1234_5678_9ABC_DEF0  # toy ceremony; kept for verification
    key = trusted_setup(qap.domain.size, tau)
    prover = Prover(qap, key)

    start = time.perf_counter()
    proof, polys = prover.prove(witness)
    elapsed = time.perf_counter() - start
    print(f"  proof generated in {elapsed * 1e3:.1f} ms "
          f"(7 NTTs + 4 MSMs over BN254 G1)")

    assert prover.check(proof, polys, tau), "proof check failed"
    assert qap.check_divisibility(polys), "QAP identity failed"
    print("  proof verified (trapdoor check + QAP divisibility)")

    # A second circuit family, for variety.
    r1cs2, witness2 = inner_product(BN254_FR, length=16)
    qap2 = QAP(r1cs2)
    key2 = trusted_setup(qap2.domain.size, tau)
    proof2, polys2 = Prover(qap2, key2).prove(witness2)
    assert Prover(qap2, key2).check(proof2, polys2, tau)
    print(f"  inner-product circuit ({len(r1cs2.constraints)} constraints) "
          f"proved and verified")

    # The full three-element Groth16 protocol (alpha/beta/gamma/delta
    # keys, per-wire IC terms, ZK randomizers).
    from repro.zkp import (
        Groth16Prover, Groth16Trapdoor, groth16_self_check, groth16_setup,
    )

    trapdoor = Groth16Trapdoor(alpha=11, beta=13, gamma=17, delta=19,
                               tau=tau)
    pk, vk = groth16_setup(qap, trapdoor)
    g16 = Groth16Prover(qap, pk).prove(witness, r=0xAAAA, s=0xBBBB)
    assert groth16_self_check(qap, vk, g16, witness, trapdoor,
                              r=0xAAAA, s=0xBBBB)
    print("  full Groth16 (A, B, C) proof generated; pairing identity "
          "holds in the exponent\n")


def production_scale_estimates() -> None:
    """Price 2^18..2^22-constraint proofs on a simulated DGX-A100."""
    headers, rows = end_to_end(DGX_A100)
    print(format_table(
        headers, rows,
        title="estimated proof generation on DGX-A100 (BN254)"))
    print()
    print("reading the table: once MSM is multi-GPU ('sota'), the")
    print("single-GPU NTT is ~half of proof time; multi-GPU NTT engines")
    print("(baseline, then UniNTT) remove that Amdahl bottleneck.")


def main() -> None:
    functional_proof()
    production_scale_estimates()


if __name__ == "__main__":
    main()
