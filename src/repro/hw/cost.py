"""Analytic cost model: phases of work -> estimated seconds.

Engines describe their execution as an ordered list of :class:`Phase`
records, each charging per-GPU work to one resource:

* ``field_muls`` — modular multiplications (compute pipe);
* ``mem_bytes`` — global-memory (HBM) traffic;
* ``exchange_bytes`` — bytes through one hierarchy level's fabric.

A phase that charges both compute and memory is costed as the *max* of
the two (GPU kernels overlap arithmetic with memory in flight).  A
:class:`PipelinedGroup` is costed as the max of its members' compute-side
and exchange-side totals — the chunked communication/computation overlap
optimization.  This is the model the paper's "uniform optimization"
claim is evaluated against: the same phase algebra applies at any level,
only the bandwidth/latency constants change.

Honesty contract: the functional simulator in :mod:`repro.sim` produces
byte/op counters for the same algorithms at feasible sizes, and the test
suite asserts the closed-form phase profiles match those counters
exactly, so large-size estimates extrapolate *measured* structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Sequence, Union

from repro.errors import HardwareModelError
from repro.field.prime_field import PrimeField
from repro.hw.model import LevelSpec, MachineModel

__all__ = ["Phase", "PipelinedGroup", "Step", "CostModel", "CostBreakdown",
           "field_limbs"]


def field_limbs(field: PrimeField) -> int:
    """Number of 64-bit limbs one element of ``field`` occupies."""
    return (field.modulus.bit_length() + 63) // 64


@dataclass(frozen=True)
class Phase:
    """One step of an engine's execution, with per-GPU resource charges.

    ``exchange_pattern`` selects the collective shape: "alltoall"
    (personalized all-to-all; pays topology congestion) or "pairwise"
    (disjoint partner pairs; rides dedicated links on rings/switches).
    """

    name: str
    field_muls: int = 0
    mem_bytes: int = 0
    exchange_bytes: int = 0
    exchange_level: str = "multi-gpu"
    exchange_pattern: str = "alltoall"
    messages: int = 0

    def __post_init__(self) -> None:
        if min(self.field_muls, self.mem_bytes, self.exchange_bytes,
               self.messages) < 0:
            raise HardwareModelError(f"phase {self.name!r}: negative charge")
        if self.exchange_pattern not in ("alltoall", "pairwise"):
            raise HardwareModelError(
                f"phase {self.name!r}: unknown exchange pattern "
                f"{self.exchange_pattern!r}")


@dataclass(frozen=True)
class PipelinedGroup:
    """Phases whose compute and communication overlap chunk-by-chunk."""

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise HardwareModelError(f"group {self.name!r} is empty")


Step = Union[Phase, PipelinedGroup]


@dataclass
class CostBreakdown:
    """Estimated seconds, split by resource and by phase."""

    total_s: float
    compute_s: float
    memory_s: float
    exchange_s: float
    per_phase: dict[str, float] = dataclass_field(default_factory=dict)
    exchange_bytes_by_level: dict[str, int] = dataclass_field(
        default_factory=dict)

    def dominant_resource(self) -> str:
        parts = {"compute": self.compute_s, "memory": self.memory_s,
                 "exchange": self.exchange_s}
        return max(parts, key=parts.get)  # type: ignore[arg-type]


class CostModel:
    """Binds a machine and a field; prices phase lists in seconds."""

    def __init__(self, machine: MachineModel, field: PrimeField):
        self.machine = machine
        self.field = field
        self.limbs = field_limbs(field)
        self.element_bytes = self.limbs * 8
        self._levels = {spec.name: spec
                        for spec in machine.levels(self.element_bytes)}
        self._mul_per_s = machine.gpu.field_mul_per_s(self.limbs)

    # -- per-resource pricing ------------------------------------------------

    def level(self, name: str) -> LevelSpec:
        spec = self._levels.get(name)
        if spec is None:
            raise HardwareModelError(
                f"{self.machine.name} has no level {name!r}; "
                f"known: {sorted(self._levels)}")
        return spec

    def compute_seconds(self, field_muls: int) -> float:
        """Time for ``field_muls`` modular multiplies on one GPU."""
        return field_muls / self._mul_per_s

    def memory_seconds(self, mem_bytes: int) -> float:
        """Time to stream ``mem_bytes`` through one GPU's HBM."""
        return mem_bytes / self.machine.gpu.hbm_bandwidth

    def exchange_seconds(self, exchange_bytes: int, level_name: str,
                         messages: int = 1,
                         pattern: str = "alltoall") -> float:
        """Time to move bytes through one level's fabric."""
        spec = self.level(level_name)
        bandwidth = spec.exchange_bandwidth
        if level_name == "multi-gpu":
            # The multi-GPU fabric's effective rate is topology-dependent.
            interconnect = self.machine.interconnect
            if pattern == "pairwise":
                bandwidth = interconnect.pairwise_bandwidth(
                    self.machine.gpu_count)
            else:
                bandwidth = interconnect.alltoall_bandwidth(
                    self.machine.gpu_count)
        return (exchange_bytes / bandwidth
                + messages * spec.exchange_latency)

    # -- phase pricing ----------------------------------------------------------

    def phase_seconds(self, phase: Phase) -> float:
        """Price one phase: max(compute, memory) + exchange."""
        local = max(self.compute_seconds(phase.field_muls),
                    self.memory_seconds(phase.mem_bytes))
        remote = 0.0
        if phase.exchange_bytes or phase.messages:
            remote = self.exchange_seconds(phase.exchange_bytes,
                                           phase.exchange_level,
                                           phase.messages,
                                           phase.exchange_pattern)
        return local + remote

    def group_seconds(self, group: PipelinedGroup) -> float:
        """Price a pipelined group: max of local-side and exchange-side."""
        local = 0.0
        remote = 0.0
        for phase in group.phases:
            local += max(self.compute_seconds(phase.field_muls),
                         self.memory_seconds(phase.mem_bytes))
            if phase.exchange_bytes or phase.messages:
                remote += self.exchange_seconds(phase.exchange_bytes,
                                                phase.exchange_level,
                                                phase.messages,
                                                phase.exchange_pattern)
        return max(local, remote)

    def estimate(self, steps: Sequence[Step]) -> CostBreakdown:
        """Price an ordered list of phases / pipelined groups."""
        total = 0.0
        compute = memory = exchange = 0.0
        per_phase: dict[str, float] = {}
        bytes_by_level: dict[str, int] = {}

        def account(phase: Phase) -> None:
            nonlocal compute, memory, exchange
            compute += self.compute_seconds(phase.field_muls)
            memory += self.memory_seconds(phase.mem_bytes)
            if phase.exchange_bytes or phase.messages:
                exchange += self.exchange_seconds(
                    phase.exchange_bytes, phase.exchange_level,
                    phase.messages, phase.exchange_pattern)
            if phase.exchange_bytes:
                bytes_by_level[phase.exchange_level] = (
                    bytes_by_level.get(phase.exchange_level, 0)
                    + phase.exchange_bytes)

        for step in steps:
            if isinstance(step, PipelinedGroup):
                seconds = self.group_seconds(step)
                for phase in step.phases:
                    account(phase)
                per_phase[step.name] = seconds
            else:
                seconds = self.phase_seconds(step)
                account(step)
                per_phase[step.name] = per_phase.get(step.name, 0.0) + seconds
            total += seconds
        return CostBreakdown(total_s=total, compute_s=compute,
                             memory_s=memory, exchange_s=exchange,
                             per_phase=per_phase,
                             exchange_bytes_by_level=bytes_by_level)
