"""Tests for the hierarchy-uniformity demonstration."""

import pytest

from repro.errors import SimulationError
from repro.field import GOLDILOCKS, TEST_FIELD_7681
from repro.sim import (
    HIERARCHY_SCALES, simulate_at_level, uniformity_sweep,
)

F = TEST_FIELD_7681


class TestSimulateAtLevel:
    def test_correct_at_each_scale(self, rng):
        for units in (2, 4, 8):
            n = units * 16
            values = F.random_vector(n, rng)
            run = simulate_at_level(F, "test", units, n, values)
            assert run.correct
            assert run.exchanges == 1

    def test_exchange_ratio_formula(self, rng):
        """One exchange moves exactly (U-1)/U elements per element."""
        for units in (2, 4, 8):
            n = units * 32
            run = simulate_at_level(F, "x", units, n,
                                    F.random_vector(n, rng))
            assert run.elements_exchanged_per_element == pytest.approx(
                (units - 1) / units)

    def test_length_validation(self):
        with pytest.raises(SimulationError, match="need"):
            simulate_at_level(F, "x", 2, 8, [1, 2, 3])

    def test_summary_renders(self, rng):
        run = simulate_at_level(F, "warp", 4, 64,
                                F.random_vector(64, rng))
        assert "warp" in run.summary()
        assert "OK" in run.summary()


class TestSweep:
    def test_standard_hierarchy(self):
        runs = uniformity_sweep(GOLDILOCKS, n_per_unit=64)
        assert [run.level for run in runs] == [name for name, _ in
                                               HIERARCHY_SCALES]
        for run in runs:
            assert run.correct, run.level
            assert run.exchanges == 1, run.level

    def test_same_invariant_at_every_level(self):
        """The optimization's effect is scale-free: exchanged volume per
        element depends only on the fanout, never on which level."""
        runs = uniformity_sweep(GOLDILOCKS, n_per_unit=64)
        for run in runs:
            assert run.elements_exchanged_per_element == pytest.approx(
                (run.units - 1) / run.units), run.level

    def test_too_small_per_unit_rejected(self):
        with pytest.raises(SimulationError, match="too small"):
            uniformity_sweep(F, n_per_unit=4,
                             scales=[("gpu", 64)])
