"""The uniform optimization set and the symbolic communication schedule.

The paper designs each optimization once against the abstract hardware
model and instantiates it per level.  :class:`UniNTTOptions` is that
set, as toggles the ablation benchmark flips:

* ``fused_twiddle`` — fold the inter-factor twiddle scaling into the
  adjacent butterfly pass instead of a standalone memory sweep.  At the
  warp level this is "twiddles in registers"; at the GPU level it is
  "no twiddle kernel"; the toggle applies uniformly.
* ``keep_permuted_output`` — leave the forward output in
  :class:`~repro.multigpu.layout.SpectralLayout` instead of
  materializing natural order, deleting one all-to-all (and, at the
  intra-GPU levels, the bit-reversal pass: DIF forward + DIT inverse).
* ``overlap`` — pipeline the all-to-all chunk-by-chunk with the cross
  transforms that consume it (at the warp level the analogue is
  shuffle/compute dual issue).
* ``radix_fusion`` — use radix-4 butterflies for local transforms,
  reducing twiddle multiplications (register-level instance of the same
  "do more per visit" idea that tiling applies at the memory level).

The second half of the module is the **symbolic schedule**: a
:class:`CommSchedule` is the list of local passes and shard transfers an
engine would execute, derived from the *same* layouts and accounting
formulas the engines use, but containing no data.  It is the object the
plan verifier (:mod:`repro.analysis.plancheck`) walks: every op declares
which dataflow *tag* it consumes and produces, so read-before-write,
lost/duplicated transfers and deadlocks are decidable without running
the simulator.  Because transfers are enumerated from the real
:class:`~repro.multigpu.layout.Layout` pair exactly the way
:func:`~repro.multigpu.base.redistribute` builds its outboxes, the
schedule's byte totals equal the simulator's traced totals bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field, replace
from typing import Union

from repro.multigpu import accounting as acct
from repro.multigpu.layout import (
    BlockLayout, Layout, SpectralLayout, UniNTTExchangeLayout,
)
from repro.ntt import radix4

__all__ = [
    "UniNTTOptions", "ALL_ON", "ALL_OFF", "ablation_grid",
    "ShardTransfer", "LocalOp", "ExchangeOp", "PairwiseOp", "ScheduleOp",
    "CommSchedule", "make_transfers", "build_unintt_schedule",
    "build_pairwise_schedule",
]


@dataclass(frozen=True)
class UniNTTOptions:
    """Toggle set for the uniform optimizations."""

    fused_twiddle: bool = True
    keep_permuted_output: bool = True
    overlap: bool = True
    radix_fusion: bool = True

    def label(self) -> str:
        """Compact on/off string for reports, e.g. ``FT+PO+OV+RF``."""
        parts = [
            ("FT", self.fused_twiddle),
            ("PO", self.keep_permuted_output),
            ("OV", self.overlap),
            ("RF", self.radix_fusion),
        ]
        on = [tag for tag, enabled in parts if enabled]
        return "+".join(on) if on else "none"

    def without(self, name: str) -> "UniNTTOptions":
        """Copy with one optimization disabled (ablation helper)."""
        if not hasattr(self, name):
            raise AttributeError(f"unknown optimization {name!r}")
        return replace(self, **{name: False})


#: Full UniNTT configuration.
ALL_ON = UniNTTOptions()

#: The un-optimized decomposition (still one-exchange-structured).
ALL_OFF = UniNTTOptions(fused_twiddle=False, keep_permuted_output=False,
                        overlap=False, radix_fusion=False)


def ablation_grid() -> list[tuple[str, "UniNTTOptions"]]:
    """The configurations the ablation figure sweeps.

    Returns (label, options) pairs: everything on, each optimization
    individually removed, and everything off.
    """
    grid: list[tuple[str, UniNTTOptions]] = [("all-on", ALL_ON)]
    for name in ("fused_twiddle", "keep_permuted_output", "overlap",
                 "radix_fusion"):
        grid.append((f"no-{name}", ALL_ON.without(name)))
    grid.append(("all-off", ALL_OFF))
    return grid


# ---------------------------------------------------------------------------
# Symbolic communication schedule
# ---------------------------------------------------------------------------

#: Dataflow tag every shard starts with before any op runs.
INPUT_TAG = "input"


@dataclass(frozen=True)
class ShardTransfer:
    """One point-to-point message inside a collective (``src != dst``)."""

    src: int
    dst: int
    nbytes: int


@dataclass(frozen=True)
class LocalOp:
    """A kernel every GPU runs on its own shard — no remote reads.

    ``consumes`` is the dataflow tag the shard must carry when the op
    starts; ``produces`` is the tag it carries afterwards.  The verifier
    treats a tag mismatch as a read-before-write: the shard the op reads
    was not produced by the pass the schedule says it depends on.
    """

    name: str
    consumes: str
    produces: str
    level: str = "gpu"
    field_muls_per_gpu: int = 0
    mem_bytes_per_gpu: int = 0


@dataclass(frozen=True)
class ExchangeOp:
    """A personalized all-to-all rewriting every destination shard.

    ``transfers`` enumerates the off-diagonal messages (self-kept data
    moves no bytes, matching :meth:`SimCluster.all_to_all`).
    ``expected_in_bytes[dst]`` is how many bytes GPU ``dst`` must
    receive for its new shard to be complete — the verifier flags a
    shortfall as a lost transfer (and the shard stays stale) and an
    excess as a duplicated transfer.
    """

    name: str
    consumes: str
    produces: str
    transfers: tuple[ShardTransfer, ...]
    expected_in_bytes: tuple[int, ...]
    level: str = "multi-gpu"
    pattern: str = "all-to-all"
    #: Set by the pipeline-fusion pass: overlap this collective with the
    #: op that consumes its output (SCCL's recv-copy-send chaining).
    #: Pure scheduling metadata — moves no bytes, changes no dataflow.
    pipelined: bool = False

    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.transfers)

    def sent_bytes_per_gpu(self, num_gpus: int) -> list[int]:
        sent = [0] * num_gpus
        for t in self.transfers:
            sent[t.src] += t.nbytes
        return sent

    def received_bytes_per_gpu(self, num_gpus: int) -> list[int]:
        received = [0] * num_gpus
        for t in self.transfers:
            received[t.dst] += t.nbytes
        return received


@dataclass(frozen=True)
class PairwiseOp:
    """A disjoint-pair exchange: GPU ``i`` swaps with ``partner_of[i]``.

    The partner map must be an involution; anything else leaves at
    least one GPU waiting on a peer that is not waiting on it, which
    the verifier reports as a deadlock cycle.
    """

    name: str
    consumes: str
    produces: str
    partner_of: tuple[int, ...]
    bytes_per_gpu: int
    level: str = "multi-gpu"
    pattern: str = "pairwise"
    #: See :attr:`ExchangeOp.pipelined`.
    pipelined: bool = False

    def total_bytes(self) -> int:
        return sum(self.bytes_per_gpu
                   for i, j in enumerate(self.partner_of) if i != j)


ScheduleOp = Union[LocalOp, ExchangeOp, PairwiseOp]


@dataclass(frozen=True)
class CommSchedule:
    """An engine run as a symbolic op list (no data, exact accounting)."""

    name: str
    num_gpus: int
    element_bytes: int
    ops: tuple[ScheduleOp, ...] = dataclass_field(default_factory=tuple)

    def with_ops(self, ops: tuple[ScheduleOp, ...]) -> "CommSchedule":
        """Copy with a different op list (fault-injection helper)."""
        return replace(self, ops=ops)

    def collective_ops(self) -> list[ScheduleOp]:
        return [op for op in self.ops
                if isinstance(op, (ExchangeOp, PairwiseOp))]

    def bytes_by_level(self) -> dict[str, int]:
        """Predicted byte totals per level, sorted keys.

        Built to equal :meth:`repro.sim.trace.Trace.bytes_by_level` for
        the run the schedule describes: local passes contribute their
        memory sweep on every GPU, collectives their off-diagonal
        transfer bytes.
        """
        totals: dict[str, int] = {}
        for op in self.ops:
            if isinstance(op, LocalOp):
                nbytes = op.mem_bytes_per_gpu * self.num_gpus
            else:
                nbytes = op.total_bytes()
            if nbytes:
                totals[op.level] = totals.get(op.level, 0) + nbytes
        return dict(sorted(totals.items()))

    def total_field_muls(self) -> int:
        return sum(op.field_muls_per_gpu * self.num_gpus
                   for op in self.ops if isinstance(op, LocalOp))


def make_transfers(source: Layout, target: Layout,
                   element_bytes: int) -> tuple[ShardTransfer, ...]:
    """Enumerate the messages that relayout ``source`` -> ``target``.

    Mirrors :func:`repro.multigpu.base.redistribute` exactly — walk the
    destination slots, find each element's current owner — but records
    only counts, so the symbolic schedule's byte totals match the
    simulator's for *any* layout pair, including permutations that move
    uneven chunks between GPU pairs.
    """
    g = source.gpu_count
    counts = [[0] * g for _ in range(g)]
    for dst in range(g):
        for local in range(target.shard_size):
            j = target.global_index(dst, local)
            src, _ = source.owner(j)
            counts[src][dst] += 1
    return tuple(
        ShardTransfer(src=src, dst=dst, nbytes=counts[src][dst]
                      * element_bytes)
        for src in range(g) for dst in range(g)
        if src != dst and counts[src][dst])


def _relayout_op(name: str, source: Layout, target: Layout,
                 element_bytes: int, consumes: str,
                 produces: str) -> ExchangeOp:
    transfers = make_transfers(source, target, element_bytes)
    received = [0] * source.gpu_count
    for t in transfers:
        received[t.dst] += t.nbytes
    return ExchangeOp(name=name, consumes=consumes, produces=produces,
                      transfers=transfers,
                      expected_in_bytes=tuple(received))


def build_unintt_schedule(n: int, gpu_count: int, element_bytes: int,
                          options: UniNTTOptions = ALL_ON,
                          tile: int = 4096) -> CommSchedule:
    """The symbolic forward UniNTT run.

    Op-for-op mirror of :meth:`repro.multigpu.unintt.UniNTTEngine.forward`
    (without a coset shift), using the same accounting formulas, so both
    :meth:`CommSchedule.bytes_by_level` and
    :meth:`CommSchedule.total_field_muls` match the simulator trace.
    """
    g = gpu_count
    if n < g * g:
        raise ValueError(f"UniNTT needs n >= G^2 ({n} < {g}^2)")
    m = n // g
    eb = element_bytes

    local_muls = (radix4.radix4_multiply_count(m) if options.radix_fusion
                  else acct.local_ntt_muls(m))
    if options.fused_twiddle:
        local_muls += acct.twiddle_muls(m)

    ops: list[ScheduleOp] = [LocalOp(
        name="local-ntt", consumes=INPUT_TAG, produces="local",
        field_muls_per_gpu=local_muls,
        mem_bytes_per_gpu=acct.local_ntt_mem_bytes(m, eb, tile))]
    tag = "local"
    if not options.fused_twiddle:
        ops.append(LocalOp(
            name="twiddle-pass", consumes=tag, produces="twiddled",
            field_muls_per_gpu=acct.twiddle_muls(m),
            mem_bytes_per_gpu=acct.pointwise_mem_bytes(m, eb)))
        tag = "twiddled"

    unit_major = BlockLayout(n=n, gpu_count=g)
    exchange = UniNTTExchangeLayout(n=n, gpu_count=g)
    ops.append(_relayout_op("unintt-exchange", unit_major, exchange, eb,
                            consumes=tag, produces="exchanged"))
    ops.append(LocalOp(
        name="cross-ntt", consumes="exchanged", produces="spectral",
        field_muls_per_gpu=acct.small_batch_ntt_muls(m // g, g),
        mem_bytes_per_gpu=acct.small_batch_mem_bytes(m // g, g, eb)))
    if not options.keep_permuted_output:
        spectral = SpectralLayout(n=n, gpu_count=g)
        natural = BlockLayout(n=n, gpu_count=g)
        ops.append(_relayout_op("unintt-materialize", spectral, natural,
                                eb, consumes="spectral",
                                produces="natural"))
    return CommSchedule(name=f"unintt[{options.label()}]", num_gpus=g,
                        element_bytes=eb, ops=tuple(ops))


def build_pairwise_schedule(n: int, gpu_count: int, element_bytes: int,
                            tile: int = 4096) -> CommSchedule:
    """The symbolic forward binary-exchange run.

    Mirrors
    :meth:`repro.multigpu.pairwise.PairwiseExchangeEngine.forward`:
    a local transform with fused twiddle, then ``log2(G)`` DIF butterfly
    stages, each one disjoint-pair exchange of the whole shard followed
    by a combine pass.
    """
    g = gpu_count
    if n < 2 * g:
        raise ValueError(f"pairwise engine needs n >= 2*G ({n} < {2 * g})")
    m = n // g
    eb = element_bytes

    ops: list[ScheduleOp] = [LocalOp(
        name="local-ntt", consumes=INPUT_TAG, produces="local",
        field_muls_per_gpu=acct.local_ntt_muls(m) + acct.twiddle_muls(m),
        mem_bytes_per_gpu=acct.local_ntt_mem_bytes(m, eb, tile))]
    tag = "local"
    half = g // 2
    while half >= 1:
        sent = f"stage-h{half}-recv"
        combined = f"stage-h{half}-out"
        ops.append(PairwiseOp(
            name=f"pairwise-stage-h{half}", consumes=tag, produces=sent,
            partner_of=tuple(s ^ half for s in range(g)),
            bytes_per_gpu=m * eb))
        ops.append(LocalOp(
            name=f"pairwise-combine-h{half}", consumes=sent,
            produces=combined, field_muls_per_gpu=m,
            mem_bytes_per_gpu=acct.pointwise_mem_bytes(m, eb)))
        tag = combined
        half //= 2
    return CommSchedule(name="pairwise-exchange", num_gpus=g,
                        element_bytes=eb, ops=tuple(ops))
