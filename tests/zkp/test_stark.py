"""Tests for the functional mini-STARK."""

import dataclasses

import pytest

from repro.errors import ProverError
from repro.field import BABYBEAR, GOLDILOCKS
from repro.zkp import SquareAffineAir, StarkProver, StarkVerifier

F = GOLDILOCKS


@pytest.fixture(scope="module")
def air():
    return SquareAffineAir(field=F, length=64)


@pytest.fixture(scope="module")
def prover(air):
    return StarkProver(air, blowup=8, query_count=12, final_degree=8)


@pytest.fixture(scope="module")
def verifier(air):
    return StarkVerifier(air, blowup=8, query_count=12, final_degree=8)


@pytest.fixture(scope="module")
def proof(air, prover):
    return prover.prove(air.trace_from_seed(3))


class TestAir:
    def test_trace_generation(self, air):
        trace = air.trace_from_seed(2)
        assert len(trace) == 64
        assert trace[0] == 2
        assert trace[1] == 6  # 4 + 2
        assert air.is_valid_trace(trace)

    def test_invalid_trace_detected(self, air):
        trace = air.trace_from_seed(2)
        trace[10] = (trace[10] + 1) % F.modulus
        assert not air.is_valid_trace(trace)

    def test_length_validation(self):
        with pytest.raises(ProverError, match="power of two"):
            SquareAffineAir(field=F, length=48)
        with pytest.raises(ProverError, match=">= 4"):
            SquareAffineAir(field=F, length=2)


class TestHonestProofs:
    def test_verifies(self, verifier, proof):
        assert verifier.verify(proof)

    def test_different_seeds(self, air, prover, verifier):
        for seed in (1, 7, 0xFFFF):
            assert verifier.verify(prover.prove(air.trace_from_seed(seed)))

    def test_deterministic(self, air, prover):
        trace = air.trace_from_seed(5)
        assert prover.prove(trace) == prover.prove(trace)

    def test_other_field(self):
        air = SquareAffineAir(field=BABYBEAR, length=32)
        prover = StarkProver(air, blowup=4, query_count=8, final_degree=4)
        verifier = StarkVerifier(air, blowup=4, query_count=8,
                                 final_degree=4)
        assert verifier.verify(prover.prove(air.trace_from_seed(9)))

    def test_proof_shape(self, prover, proof):
        params = prover.fri_params
        assert len(proof.trace_openings) == params.query_count
        assert all(len(paths) == 4 for paths in proof.trace_openings)

    def test_boundary_is_public(self, air, proof):
        trace = air.trace_from_seed(3)
        assert proof.boundary == (trace[0], trace[-1])


class TestSoundness:
    def test_prover_rejects_bad_trace(self, air, prover):
        trace = air.trace_from_seed(3)
        trace[5] = (trace[5] + 1) % F.modulus
        with pytest.raises(ProverError, match="does not satisfy"):
            prover.prove(trace)

    def test_tampered_boundary(self, verifier, proof):
        bad = dataclasses.replace(
            proof, boundary=(proof.boundary[0],
                             (proof.boundary[1] + 1) % F.modulus))
        assert not verifier.verify(bad)

    def test_tampered_root(self, verifier, proof):
        bad = dataclasses.replace(proof, trace_root=proof.trace_root[::-1])
        assert not verifier.verify(bad)

    def test_tampered_trace_opening(self, verifier, proof):
        paths = proof.trace_openings[0]
        bad_path = dataclasses.replace(
            paths[0], leaf=(paths[0].leaf + 1) % F.modulus)
        bad_openings = ((bad_path,) + paths[1:],) + proof.trace_openings[1:]
        assert not verifier.verify(
            dataclasses.replace(proof, trace_openings=bad_openings))

    def test_wrong_opening_count(self, verifier, proof):
        assert not verifier.verify(dataclasses.replace(
            proof, trace_openings=proof.trace_openings[:-1]))

    def test_swapped_proofs_rejected(self, air, prover, verifier):
        """A proof for one seed does not verify another's boundary."""
        proof_a = prover.prove(air.trace_from_seed(3))
        proof_b = prover.prove(air.trace_from_seed(4))
        frankenstein = dataclasses.replace(proof_a,
                                           boundary=proof_b.boundary)
        assert not verifier.verify(frankenstein)


class TestNttWorkloadShape:
    def test_transform_sizes(self, air, prover):
        """One INTT(n) + one coset NTT(blowup*n) per proof — the counts
        the STARK cost model charges."""
        assert prover.fri_params.domain_size == 8 * air.length
        assert prover.fri_params.round_count == 3  # 64 -> 32 -> 16 -> 8


class TestAirFamily:
    @pytest.mark.parametrize("quad,linear,constant", [
        (1, 1, 0),       # the default chain
        (3, 0, 7),       # pure square map with offset
        (2, 5, 11),      # full quadratic
        (0, 3, 1),       # affine degenerate case
    ])
    def test_parameterized_airs(self, quad, linear, constant):
        air = SquareAffineAir(field=F, length=32, quad=quad,
                              linear=linear, constant=constant)
        trace = air.trace_from_seed(6)
        assert air.is_valid_trace(trace)
        prover = StarkProver(air, blowup=4, query_count=8, final_degree=4)
        verifier = StarkVerifier(air, blowup=4, query_count=8,
                                 final_degree=4)
        assert verifier.verify(prover.prove(trace))

    def test_different_airs_reject_each_others_traces(self):
        air_a = SquareAffineAir(field=F, length=32, quad=1, linear=1)
        air_b = SquareAffineAir(field=F, length=32, quad=1, linear=2)
        trace = air_a.trace_from_seed(6)
        assert not air_b.is_valid_trace(trace)
        prover_b = StarkProver(air_b, blowup=4, query_count=8,
                               final_degree=4)
        with pytest.raises(ProverError, match="does not satisfy"):
            prover_b.prove(trace)
