"""Decomposition-plan explorer.

Shows the UniNTT recursion: how one transform decomposes across the
warp / block / GPU / multi-GPU hierarchy, that every plan computes the
identical spectrum, and how the cost model attributes time to each
hierarchy level.

Run:  python examples/plan_explorer.py
"""

import random

from repro.bench import format_table
from repro.field import GOLDILOCKS
from repro.hw import CostModel, DGX_A100
from repro.multigpu import BaselineFourStepEngine, UniNTTEngine
from repro.ntt import (
    balanced_plan, dft, hierarchical_plan, plan_ntt, plan_for_machine_shape,
)
from repro.sim import SimCluster


def show_plans() -> None:
    """Print plan trees for one transform at several hierarchy shapes."""
    n = 1 << 12
    print(f"decomposition plans for a 2^12-point NTT\n")

    flat = balanced_plan(n, leaf_size=64)
    print("balanced out-of-core plan (leaf = 64):")
    print(flat.describe())
    print()

    machine_plan = plan_for_machine_shape(n, gpu_count=8, sm_per_gpu=4,
                                          warps_per_block=2,
                                          lanes_per_warp=4, leaf_size=8)
    print("machine-shaped plan (8 GPUs x 4 SMs x 2 warps x 4 lanes):")
    print(machine_plan.describe())
    print()
    print(f"levels used, outermost first: {machine_plan.levels_used()}")
    print()


def verify_equivalence() -> None:
    """Every plan computes the same spectrum as the reference DFT."""
    field = GOLDILOCKS
    n = 256
    rng = random.Random(5)
    values = field.random_vector(n, rng)
    reference = dft(field, values)

    plans = {
        "leaf-only": balanced_plan(n, leaf_size=n),
        "balanced-16": balanced_plan(n, leaf_size=16),
        "hierarchy-4x4x4": hierarchical_plan(
            n, [("multi-gpu", 4), ("gpu", 4), ("warp", 4)], leaf_size=4),
    }
    for name, plan in plans.items():
        result = plan_ntt(field, plan, values)
        status = "OK" if result == reference else "MISMATCH"
        print(f"  {name:18s} depth={plan.depth()}  {status}")
    print()


def level_attribution() -> None:
    """Where does the time go?  Per-phase cost on a DGX-A100."""
    field = GOLDILOCKS
    n = 1 << 24
    machine = DGX_A100
    cluster = SimCluster(field, machine.gpu_count)
    model = CostModel(machine, field)

    headers = ["engine", "phase", "ms"]
    rows = []
    for engine in (BaselineFourStepEngine(cluster), UniNTTEngine(cluster)):
        breakdown = model.estimate(engine.forward_profile(n))
        for phase, seconds in breakdown.per_phase.items():
            rows.append([engine.name, phase, seconds * 1e3])
        rows.append([engine.name, "TOTAL", breakdown.total_s * 1e3])
    print(format_table(headers, rows,
                       title=f"per-phase cost, 2^24 {field.name} NTT on "
                             f"{machine.name}"))


def main() -> None:
    show_plans()
    verify_equivalence()
    level_attribution()


if __name__ == "__main__":
    main()
