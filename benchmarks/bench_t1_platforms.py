"""T1: the simulated hardware platforms table."""

from repro.bench import platforms_table


def test_t1_platforms(benchmark, emit):
    table = benchmark(platforms_table)
    emit("T1_platforms", "T1: evaluated (simulated) hardware platforms",
         table)
