"""Experiment drivers: one function per reconstructed table/figure.

Each runner returns ``(headers, rows)`` ready for
:func:`repro.bench.reporting.format_table`; the ``benchmarks/`` files
wrap them in pytest-benchmark targets and persist the reports.  Keeping
the sweeps here lets the example scripts regenerate the same numbers.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.reporting import geomean
from repro.field.presets import BLS12_381_FR
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel
from repro.hw.machines import ALL_MACHINES, DGX_A100
from repro.hw.model import MachineModel
from repro.multigpu.baseline import BaselineFourStepEngine
from repro.multigpu.pairwise import PairwiseExchangeEngine
from repro.multigpu.base import DistributedVector
from repro.multigpu.schedule import ablation_grid
from repro.multigpu.singlegpu import SingleGpuEngine
from repro.multigpu.unintt import UniNTTEngine
from repro.sim.cluster import SimCluster
from repro.zkp.pipeline import EndToEndModel

__all__ = [
    "platforms_table", "workloads_table", "single_gpu_comparison",
    "multi_gpu_scaling", "headline_speedups", "comm_breakdown",
    "ablation", "end_to_end", "batch_throughput",
    "interconnect_sensitivity", "multi_node_scaling",
    "stark_end_to_end", "backend_comparison", "resilience_overhead",
    "serving_throughput", "durability_degradation",
    "bigfield_comparison", "schedule_synthesis", "fleet_scaling",
]

Row = Sequence[object]
Table = tuple[list[str], list[list[object]]]


def platforms_table() -> Table:
    """T1: the simulated hardware platforms."""
    headers = ["machine", "gpus", "gpu model", "HBM GB/s", "word-mul/s",
               "interconnect", "link GB/s", "P2P"]
    rows = []
    for machine in ALL_MACHINES:
        ic = machine.interconnect
        rows.append([
            machine.name, machine.gpu_count, machine.gpu.name,
            machine.gpu.hbm_bandwidth / 1e9,
            f"{machine.gpu.word_mul_per_s:.2e}",
            ic.kind, ic.link_bandwidth / 1e9,
            "yes" if ic.peer_to_peer else "no",
        ])
    return headers, rows


def workloads_table() -> Table:
    """T2: the benchmark workload grid."""
    from repro.bench.workloads import standard_workloads
    from repro.hw.cost import field_limbs

    headers = ["workload", "field bits", "limbs", "size", "bytes/elem",
               "total MB"]
    rows = []
    for workload in standard_workloads():
        field = workload.field
        limbs = field_limbs(field)
        rows.append([
            workload.label(), field.modulus.bit_length(), limbs,
            workload.size, limbs * 8,
            workload.elements * limbs * 8 / 2**20,
        ])
    return headers, rows


def single_gpu_comparison(machine: MachineModel = DGX_A100,
                          field: PrimeField = BLS12_381_FR,
                          log_sizes: Sequence[int] = (12, 16, 20, 24, 26),
                          ) -> Table:
    """F7: single-GPU NTT, naive global-memory kernel vs tiled kernel.

    Throughput in 10^6 elements/second for one GPU (gather/scatter
    excluded by using a 1-GPU cluster).
    """
    headers = ["log2(n)", "naive ms", "tiled ms", "speedup",
               "naive Melem/s", "tiled Melem/s"]
    rows = []
    single = machine.with_gpu_count(1)
    cluster = SimCluster(field, 1)
    naive = SingleGpuEngine(cluster, naive=True)
    tiled = SingleGpuEngine(cluster, naive=False)
    for log_size in log_sizes:
        n = 1 << log_size
        t_naive = naive.estimate(single, n).total_s
        t_tiled = tiled.estimate(single, n).total_s
        rows.append([
            log_size, t_naive * 1e3, t_tiled * 1e3,
            t_naive / t_tiled,
            n / t_naive / 1e6, n / t_tiled / 1e6,
        ])
    return headers, rows


def multi_gpu_scaling(machine: MachineModel = DGX_A100,
                      field: PrimeField = BLS12_381_FR,
                      gpu_counts: Sequence[int] = (1, 2, 4, 8),
                      log_sizes: Sequence[int] = (20, 24, 28),
                      ) -> Table:
    """F8: UniNTT vs baseline vs single-GPU across GPU counts and sizes."""
    headers = ["log2(n)", "gpus", "single ms", "baseline ms", "unintt ms",
               "unintt vs baseline", "unintt vs single"]
    rows = []
    for log_size in log_sizes:
        n = 1 << log_size
        for gpus in gpu_counts:
            sub_machine = machine.with_gpu_count(gpus)
            cluster = SimCluster(field, gpus)
            t_single = SingleGpuEngine(cluster).estimate(
                sub_machine, n).total_s
            if gpus == 1:
                rows.append([log_size, gpus, t_single * 1e3, "-", "-",
                             "-", "-"])
                continue
            t_base = BaselineFourStepEngine(cluster).estimate(
                sub_machine, n).total_s
            t_uni = UniNTTEngine(cluster).estimate(sub_machine, n).total_s
            rows.append([
                log_size, gpus, t_single * 1e3, t_base * 1e3, t_uni * 1e3,
                t_base / t_uni, t_single / t_uni,
            ])
    return headers, rows


def headline_speedups(field: PrimeField = BLS12_381_FR,
                      log_sizes: Sequence[int] = (20, 22, 24, 26, 28),
                      machines: Sequence[MachineModel] | None = None,
                      ) -> Table:
    """F8 summary: per-machine geomean speedups (the 4.26x headline)."""
    headers = ["machine", "geomean vs baseline", "geomean vs single-gpu"]
    rows: list[list[object]] = []
    machines = list(machines) if machines is not None else list(ALL_MACHINES)
    vs_base_all: list[float] = []
    vs_single_all: list[float] = []
    for machine in machines:
        cluster = SimCluster(field, machine.gpu_count)
        uni = UniNTTEngine(cluster)
        base = BaselineFourStepEngine(cluster)
        single = SingleGpuEngine(cluster)
        vs_base = []
        vs_single = []
        for log_size in log_sizes:
            n = 1 << log_size
            t_uni = uni.estimate(machine, n).total_s
            vs_base.append(base.estimate(machine, n).total_s / t_uni)
            vs_single.append(single.estimate(machine, n).total_s / t_uni)
        vs_base_all.extend(vs_base)
        vs_single_all.extend(vs_single)
        rows.append([machine.name, geomean(vs_base), geomean(vs_single)])
    rows.append(["OVERALL", geomean(vs_base_all), geomean(vs_single_all)])
    return headers, rows


def comm_breakdown(field: PrimeField = BLS12_381_FR,
                   gpu_count: int = 8, log_size: int = 12) -> Table:
    """F9: measured bytes by hierarchy level and collective count.

    Runs the functional simulator (hence the modest default size; byte
    *ratios* are size-independent, asserted by the test suite).
    """
    headers = ["engine", "collectives", "inter-GPU MB", "HBM MB",
               "inter-GPU bytes/elem"]
    rows = []
    n = 1 << log_size
    import random
    rng = random.Random(0)
    values = field.random_vector(n, rng)
    for engine_cls in (BaselineFourStepEngine, PairwiseExchangeEngine,
                       UniNTTEngine):
        cluster = SimCluster(field, gpu_count)
        engine = engine_cls(cluster)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        engine.forward(vec)
        by_level = cluster.trace.bytes_by_level()
        inter = by_level.get("multi-gpu", 0)
        hbm = by_level.get("gpu", 0)
        rows.append([
            engine.name, cluster.trace.collective_count(),
            inter / 2**20, hbm / 2**20, inter / n,
        ])
    return headers, rows


def ablation(machine: MachineModel = DGX_A100,
             field: PrimeField = BLS12_381_FR,
             log_size: int = 24) -> Table:
    """F10: each uniform optimization toggled off individually."""
    headers = ["configuration", "time ms", "slowdown vs all-on"]
    rows = []
    n = 1 << log_size
    cluster = SimCluster(field, machine.gpu_count)
    reference = None
    for label, options in ablation_grid():
        engine = UniNTTEngine(cluster, options=options)
        t = engine.estimate(machine, n).total_s
        if reference is None:
            reference = t
        rows.append([label, t * 1e3, t / reference])
    return headers, rows


def end_to_end(machine: MachineModel = DGX_A100,
               log_constraints: Sequence[int] = (18, 20, 22),
               profile=None) -> Table:
    """F11: proof-generation time under four system configurations.

    ``profile`` selects the proof system (Groth16 by default; pass
    :data:`repro.zkp.PLONK_PROFILE` for the PLONK recipe).
    """
    headers = ["log2(constraints)", "config", "ntt ms", "msm ms",
               "total ms", "ntt %", "speedup vs sota"]
    from repro.field.presets import BN254_FR
    from repro.zkp.profiles import GROTH16_PROFILE

    if profile is None:
        profile = GROTH16_PROFILE
    rows = []
    gpus = machine.gpu_count
    configs = [
        ("all-single-gpu", SingleGpuEngine(SimCluster(BN254_FR, gpus)), 1),
        ("sota (msm multi, ntt single)",
         SingleGpuEngine(SimCluster(BN254_FR, gpus)), gpus),
        ("baseline-multintt",
         BaselineFourStepEngine(SimCluster(BN254_FR, gpus)), gpus),
        ("unintt", UniNTTEngine(SimCluster(BN254_FR, gpus)), gpus),
    ]
    for log_c in log_constraints:
        constraints = 1 << log_c
        sota_total = None
        for name, engine, msm_gpus in configs:
            model = EndToEndModel(machine, engine, msm_gpus=msm_gpus,
                                  profile=profile)
            est = model.proof_cost(constraints)
            if name.startswith("sota"):
                sota_total = est.total_s
            speedup = (f"{sota_total / est.total_s:.2f}x"
                       if sota_total else "-")
            rows.append([
                log_c, name, est.ntt_s * 1e3, est.msm_s * 1e3,
                est.total_s * 1e3, round(est.ntt_fraction() * 100),
                speedup,
            ])
    return headers, rows


def batch_throughput(machine: MachineModel = DGX_A100,
                     field: PrimeField = BLS12_381_FR,
                     log_size: int = 18,
                     batches: Sequence[int] = (1, 4, 16, 64),
                     ) -> Table:
    """T3: batched NTT throughput (transforms amortize launch latency)."""
    headers = ["batch", "unintt ms/batch", "Melem/s", "vs batch=1"]
    rows = []
    n = 1 << log_size
    cluster = SimCluster(field, machine.gpu_count)
    engine = UniNTTEngine(cluster)
    model = CostModel(machine, field)
    base_rate = None
    for batch in batches:
        profile = engine.forward_profile(n)
        single = model.estimate(profile).total_s
        # Back-to-back transforms pipeline: per-collective latency is
        # paid once per batch, bandwidth/compute scale linearly.
        latency = machine.interconnect.latency
        total = single * batch - latency * (batch - 1)
        rate = batch * n / total / 1e6
        if base_rate is None:
            base_rate = rate
        rows.append([batch, total / batch * 1e3, rate, rate / base_rate])
    return headers, rows


def interconnect_sensitivity(field: PrimeField = BLS12_381_FR,
                             log_size: int = 24) -> Table:
    """F12: the same engines across interconnect families."""
    headers = ["machine", "baseline ms", "pairwise ms", "unintt ms",
               "speedup vs baseline", "unintt bottleneck"]
    rows = []
    n = 1 << log_size
    for machine in ALL_MACHINES:
        cluster = SimCluster(field, machine.gpu_count)
        t_base = BaselineFourStepEngine(cluster).estimate(machine, n)
        t_pair = PairwiseExchangeEngine(cluster).estimate(machine, n)
        uni = UniNTTEngine(cluster)
        t_uni = uni.estimate(machine, n)
        rows.append([
            machine.name, t_base.total_s * 1e3, t_pair.total_s * 1e3,
            t_uni.total_s * 1e3,
            t_base.total_s / t_uni.total_s,
            t_uni.dominant_resource(),
        ])
    return headers, rows


def multi_node_scaling(field: PrimeField = BLS12_381_FR,
                       node_counts: Sequence[int] = (2, 4, 8),
                       log_sizes: Sequence[int] = (24, 28)) -> Table:
    """F14: scaling past one node — hierarchical vs topology-unaware.

    Flat engines see all GPUs behind the inter-node network (the NCCL
    all-to-all reality); the hierarchical engine splits traffic between
    the NVSwitch and InfiniBand fabrics via the two-level recursion.
    """
    from repro.hw.machines import DGX_A100
    from repro.hw.multinode import MultiNodeMachine
    from repro.hw.topology import infiniband
    from repro.multigpu.hierarchical import HierarchicalUniNTTEngine

    headers = ["nodes", "log2(n)", "flat-baseline ms", "flat-unintt ms",
               "hierarchical ms", "hier vs flat-unintt",
               "hier vs flat-baseline"]
    rows = []
    for nodes in node_counts:
        cluster_machine = MultiNodeMachine(
            name=f"{nodes}xDGX-A100", node=DGX_A100, node_count=nodes,
            network=infiniband())
        flat_machine = cluster_machine.flattened()
        total = cluster_machine.total_gpus
        for log_size in log_sizes:
            n = 1 << log_size
            hier_cluster = SimCluster(field, total, node_size=8)
            t_hier = HierarchicalUniNTTEngine(hier_cluster).estimate(
                cluster_machine, n).total_s
            flat_cluster = SimCluster(field, total)
            t_uni = UniNTTEngine(flat_cluster).estimate(
                flat_machine, n).total_s
            t_base = BaselineFourStepEngine(flat_cluster).estimate(
                flat_machine, n).total_s
            rows.append([
                nodes, log_size, t_base * 1e3, t_uni * 1e3, t_hier * 1e3,
                t_uni / t_hier, t_base / t_hier,
            ])
    return headers, rows


def schedule_synthesis(field: PrimeField = BLS12_381_FR,
                       log_size: int = 24) -> Table:
    """F24: hand-written vs synthesized communication schedules.

    For each topology, every verified schedule candidate the pass
    framework and hierarchical synthesis offer is priced two ways:
    sequential :class:`~repro.hw.plancost.PlanCost` (level-by-level,
    validated) and the overlap-aware modeled wall-clock the autotuner
    ranks by.  On the multi-node clusters the winner is the synthesized
    stage+rail decomposition — the paper's hierarchy argument, derived
    and proved by the rewriter instead of hand-coded.
    """
    from repro.hw.multinode import FOUR_NODE_DGX_A100, MultiNodeMachine
    from repro.hw.topology import infiniband
    from repro.multigpu.autotune import select_schedule

    two_node = MultiNodeMachine(name="2xDGX-A100", node=DGX_A100,
                                node_count=2, network=infiniband())
    topologies = [
        DGX_A100.with_gpu_count(2),
        DGX_A100.with_gpu_count(4),
        DGX_A100,
        two_node,
        FOUR_NODE_DGX_A100,
    ]
    headers = ["topology", "GPUs", "schedule", "sequential ms",
               "modeled ms", "origin", "selected"]
    rows = []
    n = 1 << log_size
    for machine in topologies:
        total = machine.total_gpus if hasattr(machine, "node_count") \
            else machine.gpu_count
        for rank, choice in enumerate(select_schedule(machine, field, n)):
            rows.append([
                machine.name, total, choice.name,
                choice.cost.total_s * 1e3, choice.seconds * 1e3,
                "synthesized" if choice.synthesized else "hand-written",
                "yes" if rank == 0 else "",
            ])
    return headers, rows


def stark_end_to_end(machine: MachineModel = DGX_A100,
                     log_traces: Sequence[int] = (18, 20, 22)) -> Table:
    """F15: hash-based (STARK) proof generation — no MSM to hide behind.

    The strongest version of the motivation: with Merkle commitments
    instead of MSMs, the NTT share of proof time is 60-75% and the
    multi-GPU NTT choice moves whole-proof time by >2x.
    """
    from repro.field.presets import GOLDILOCKS
    from repro.zkp.stark_model import StarkCostModel

    headers = ["log2(trace)", "engine", "ntt ms", "hash ms", "total ms",
               "ntt %", "speedup vs single"]
    rows = []
    gpus = machine.gpu_count
    for log_trace in log_traces:
        trace = 1 << log_trace
        base_total = None
        for name, engine in (
                ("single-gpu", SingleGpuEngine(SimCluster(GOLDILOCKS,
                                                          gpus))),
                ("baseline", BaselineFourStepEngine(SimCluster(GOLDILOCKS,
                                                               gpus))),
                ("unintt", UniNTTEngine(SimCluster(GOLDILOCKS, gpus)))):
            model = StarkCostModel(machine, engine)
            est = model.proof_cost(trace)
            if base_total is None:
                base_total = est.total_s
            rows.append([
                log_trace, name, est.ntt_s * 1e3, est.hash_s * 1e3,
                est.total_s * 1e3, round(est.ntt_fraction() * 100),
                f"{base_total / est.total_s:.2f}x",
            ])
    return headers, rows


def backend_comparison(log_sizes: Sequence[int] = (10, 12, 14),
                       repeats: int = 3) -> Table:
    """F19: measured field-backend comparison on a real radix-2 NTT.

    Unlike the other runners this one does not price a cost model — it
    wall-clock-times the actual transform under each registered compute
    backend (pure-Python reference vs the vectorized numpy kernels) over
    Goldilocks, the field whose 64-bit lanes stress the multi-word
    arithmetic most.  When numpy is unavailable the numpy column reads
    ``n/a`` and the speedup is 1.0.
    """
    import random
    import time

    from repro.field import available_backends, use_backend
    from repro.field.presets import GOLDILOCKS
    from repro.ntt.radix2 import ntt

    def best_time(backend: str, values: list[int]) -> float:
        best = float("inf")
        with use_backend(backend):
            ntt(GOLDILOCKS, values)  # warm the twiddle cache
            for _ in range(repeats):
                start = time.perf_counter()
                ntt(GOLDILOCKS, values)
                best = min(best, time.perf_counter() - start)
        return best

    have_numpy = available_backends()["numpy"]
    headers = ["log2(n)", "field", "python ms", "numpy ms", "speedup"]
    rows = []
    rng = random.Random(2024)
    for log_n in log_sizes:
        values = GOLDILOCKS.random_vector(1 << log_n, rng)
        t_py = best_time("python", values)
        if have_numpy:
            t_np = best_time("numpy", values)
            rows.append([log_n, GOLDILOCKS.name, t_py * 1e3, t_np * 1e3,
                        f"{t_py / t_np:.1f}x"])
        else:
            rows.append([log_n, GOLDILOCKS.name, t_py * 1e3, "n/a", "1.0x"])
    return headers, rows


def bigfield_comparison(log_sizes: Sequence[int] = (10, 12, 14, 16),
                        repeats: int = 7) -> Table:
    """F23: measured multi-limb backend comparison on the big ZKP fields.

    Wall-clock-times the radix-2 NTT over BN254-Fr and BLS12-381-Fr
    under the pure-Python reference and the multi-limb backend
    (``repro.field.multilimb``).  Two timings are reported for the
    multi-limb side, mirroring how the paper reports GPU kernels:

    * **e2e** — the full list-in/list-out call, including the
      limb pack/unpack conversion at the boundary (the analogue of
      host<->device transfers);
    * **resident** — the transform alone on already-packed limb
      planes with resident twiddle tables, the regime a proof
      pipeline runs in when data stays packed across
      NTT -> pointwise -> INTT (the analogue of device-resident
      kernel time).

    The three timings are *interleaved* — each repeat times python,
    then e2e, then resident back to back — so all columns sample the
    same machine regime (on a shared host, memory-bandwidth contention
    hits the vectorized side much harder than the cache-resident
    pure-Python loop, and sequential measurement would skew the
    ratios).  Best-of-``repeats`` per column.  When numpy is
    unavailable the multi-limb columns read ``n/a`` and speedups
    are 1.0.
    """
    import random
    import time

    from repro.field import available_backends, use_backend
    from repro.field.multilimb import MultiLimbBackend
    from repro.field.presets import BN254_FR
    from repro.ntt.radix2 import ntt
    from repro.ntt.twiddle import TwiddleCache

    fields = (BN254_FR, BLS12_381_FR)

    def timed(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    have_numpy = available_backends()["multilimb"]
    headers = ["log2(n)", "field", "python ms", "multilimb ms",
               "e2e speedup", "resident ms", "resident speedup"]
    rows = []
    rng = random.Random(2024)
    cache = TwiddleCache()
    backend = MultiLimbBackend() if have_numpy else None
    for log_n in log_sizes:
        n = 1 << log_n
        for field in fields:
            values = field.random_vector(n, rng)

            def run_python():
                with use_backend("python"):
                    return ntt(field, values, cache)

            if not have_numpy:
                run_python()  # warm the twiddle cache
                t_py = min(timed(run_python) for _ in range(repeats))
                rows.append([log_n, field.name, t_py * 1e3, "n/a",
                             "1.0x", "n/a", "1.0x"])
                continue

            def run_e2e():
                with use_backend("multilimb"):
                    return ntt(field, values, cache)

            ops = backend.lane_ops(field)
            packed = ops.pack(values)
            root = field.root_of_unity(n)
            table = cache.packed_powers(
                field, root, n // 2, ops.pack_table, fmt=ops.fmt)

            def run_resident():
                return ops.ntt_core(packed, table)

            # Warm every path (twiddles, scratch, packed stage tables),
            # then interleave the measured repeats.
            run_python(), run_e2e(), run_resident()
            t_py = t_ml = t_res = float("inf")
            for _ in range(repeats):
                t_py = min(t_py, timed(run_python))
                t_ml = min(t_ml, timed(run_e2e))
                t_res = min(t_res, timed(run_resident))
            rows.append([
                log_n, field.name, t_py * 1e3, t_ml * 1e3,
                f"{t_py / t_ml:.1f}x", t_res * 1e3,
                f"{t_py / t_res:.1f}x",
            ])
    return headers, rows


def resilience_overhead(log_size: int = 10, gpus: int = 8,
                        machine: MachineModel = DGX_A100) -> Table:
    """F20: modeled cost of recovering from injected faults.

    Each scenario runs the same forward transform functionally on the
    simulator under one seeded fault, recovers through the resilient
    engine (retry, checksum-triggered retry, degradation pricing, or
    re-shard onto survivors), verifies the output stayed bit-exact, and
    prices the whole run — wasted attempts, backoff, checkpoints, and
    reshard traffic included — on ``machine``.  The overhead column is
    the slowdown versus the fault-free run of the identical transform.
    """
    import random

    from repro.analysis.tracecheck import check_trace
    from repro.field.presets import GOLDILOCKS
    from repro.multigpu.resilience import ResilientNTTEngine
    from repro.ntt import ntt
    from repro.sim.faults import FaultInjector, FaultPlan

    n = 1 << log_size
    scenarios = [
        ("fault-free", []),
        ("transient-comm", ["transient-comm@0"]),
        ("corrupt-shard", ["corrupt-shard@0:gpu=1,delta=13"]),
        ("link-degrade", ["link-degrade@0:factor=0.25"]),
        ("straggler", ["straggler@0:gpu=3,factor=4"]),
        ("device-death", ["device-death@0:gpu=2"]),
    ]
    headers = ["scenario", "gpus", "modeled ms", "overhead", "retries",
               "reshards", "outcome"]
    rows: list[list[object]] = []
    values = GOLDILOCKS.random_vector(n, random.Random(0xF20))
    want = ntt(GOLDILOCKS, values)
    base = None
    for name, specs in scenarios:
        plan = FaultPlan.from_specs(specs, seed=0xF20)
        cluster = SimCluster(
            GOLDILOCKS, gpus,
            injector=FaultInjector(plan, GOLDILOCKS.modulus))
        engine = ResilientNTTEngine(cluster, UniNTTEngine)
        vec = DistributedVector.from_values(cluster, values,
                                            engine.input_layout(n))
        got = engine.forward(vec).to_values()
        findings = check_trace(cluster.trace)
        cost = engine.report.plan_cost(machine)
        if base is None:
            base = cost.total_s
        outcome = "bit-exact" if got == want else "MISMATCH"
        outcome += ", clean trace" if not findings \
            else f", {len(findings)} finding(s)"
        rows.append([name, engine.gpu_count, cost.total_s * 1e3,
                     f"{cost.total_s / base:.2f}x",
                     engine.report.retries, engine.report.reshards,
                     outcome])
    return headers, rows


def serving_throughput(log_size: int = 10,
                       machine: MachineModel = DGX_A100) -> Table:
    """F21: served throughput vs offered load, batched vs one-at-a-time.

    Each row offers a burst of concurrent same-shape requests to two
    servers: the baseline serves them strictly one per dispatch with
    per-dispatch planning and twiddle generation redone every time;
    the batched server coalesces compatible requests into one dispatch
    and reuses the plan/twiddle caches across the run.  Both runs are
    functional (every output is checked bit-exactly against the
    reference transform) and priced on ``machine``; the speedup column
    is the throughput ratio at that offered load.
    """
    from repro.ntt import ntt
    from repro.serve import ProofServer, WorkloadSpec, generate_workload

    field = BLS12_381_FR
    headers = ["offered load", "one-at-a-time req/s", "batched req/s",
               "speedup", "batches", "batched p99 ms", "outcome"]
    rows: list[list[object]] = []
    for load in (1, 2, 4, 8, 16):
        spec = WorkloadSpec(requests=load, log_sizes=(log_size,),
                            field_names=(field.name,), seed=0xF21)
        workload = generate_workload(spec)
        baseline = ProofServer(machine, batching=False,
                               caching=False).serve(workload)
        batched = ProofServer(machine).serve(workload)
        exact = all(
            list(out) == ntt(field, list(lane))
            for report in (baseline, batched)
            for result in report.results
            for lane, out in zip(result.request.vectors(),
                                 result.outputs))
        rows.append([
            load,
            baseline.throughput_rps(),
            batched.throughput_rps(),
            f"{batched.throughput_rps() / baseline.throughput_rps():.2f}x",
            batched.batches,
            batched.latency_percentiles_s()["p99"] * 1e3,
            "bit-exact" if exact else "MISMATCH",
        ])
    return headers, rows


def durability_degradation(log_size: int = 8,
                           machine: MachineModel = DGX_A100) -> Table:
    """F22: crash-recovery cost and degraded-mode goodput.

    Part one (the ``crash@...`` rows) serves a fixed workload through
    the write-ahead journal, kills the server at injected journal
    sequence numbers, and replays the journal until the run drains:
    every recovered run must merge to outputs bit-identical to the
    uninterrupted run, with the recovery downtime priced and counted.
    Part two (the ``faults ...`` rows) offers the same workload under
    increasingly hostile fabric faults twice — once with bounded
    retries only, once with the graceful-degradation controller
    (breakers, single-GPU fallback, shedding) — and records the
    goodput of each arm.  At sustained fault rates the retry-only arm
    dies with retries exhausted while the degraded arm keeps serving:
    that contrast is the acceptance artifact for degraded mode.
    """
    from repro.analysis.tracecheck import check_trace
    from repro.errors import ServeError
    from repro.field.presets import GOLDILOCKS
    from repro.ntt import ntt
    from repro.serve import (
        DegradePolicy, ProofServer, WorkloadSpec, WriteAheadJournal,
        generate_workload, serve_durably,
    )
    from repro.sim.faults import FaultInjector, FaultPlan

    spec = WorkloadSpec(requests=16, log_sizes=(log_size,),
                        field_names=(GOLDILOCKS.name,),
                        mean_interarrival_s=2e-5, deadline_s=1.0,
                        seed=0xF22)
    workload = generate_workload(spec)
    # split + no batching so every dispatch runs collectives the fault
    # injector can gate, and so crashes land between many dispatches.
    config = dict(strategy="split", batching=False)

    clean = ProofServer(machine, **config).serve(workload)
    reference = {r.request.request_id: r.outputs for r in clean.results}

    def outcome_of(results, trace) -> str:
        exact = all(reference[r.request.request_id] == r.outputs
                    for r in results)
        findings = check_trace(trace)
        label = "bit-exact" if exact else "MISMATCH"
        label += ", clean trace" if not findings \
            else f", {len(findings)} finding(s)"
        return label

    headers = ["scenario", "completed", "recoveries", "replayed",
               "fallback", "shed", "recovery ms", "goodput req/s",
               "outcome"]
    rows: list[list[object]] = []

    journaled = ProofServer(machine, journal=WriteAheadJournal(),
                            snapshot_every=8, **config)
    base = journaled.serve(workload)
    rows.append(["uninterrupted (journaled)", base.completed, 0, 0, 0, 0,
                 0.0, base.throughput_rps(),
                 outcome_of(base.results, journaled.trace)])

    for label, steps in (("crash@5", (5,)), ("crash@30", (30,)),
                         ("crash@5,30,55", (5, 30, 55))):
        journal = WriteAheadJournal()
        crash = FaultPlan.from_specs(
            [f"server-crash@{s}" for s in steps], seed=0xF22)
        outcome = serve_durably(
            workload,
            lambda: ProofServer(machine, journal=journal,
                                snapshot_every=8, crash_plan=crash,
                                **config))
        recovery_ms = sum(leg.recovery_s for leg in outcome.legs) * 1e3
        replayed = sum(leg.replayed_records for leg in outcome.legs)
        rows.append([f"{label} -> recover", len(outcome.results),
                     outcome.recoveries, replayed, 0, 0, recovery_ms,
                     outcome.report.throughput_rps(),
                     outcome_of(outcome.results,
                                outcome.server.trace)])

    fault_grid = (
        ("faults 1-shot", ["transient-comm@0:count=1"]),
        ("faults bursty", [f"transient-comm@{s}:count=2"
                           for s in range(0, 200, 25)]),
        ("faults sustained", ["transient-comm@0:count=100000"]),
    )
    for label, specs in fault_grid:
        plan = FaultPlan.from_specs(specs, seed=0xF22)
        for arm, policy in (("retry-only", None),
                            ("degraded", DegradePolicy(
                                breaker_threshold=2))):
            server = ProofServer(
                machine, injector=FaultInjector(plan, GOLDILOCKS.modulus),
                degrade=policy, **config)
            try:
                report = server.serve(workload)
                note = outcome_of(report.results, server.trace)
            except ServeError as error:
                report = getattr(error, "report", None)
                if report is None:
                    raise
                note = "FAILED: retries exhausted"
            rows.append([f"{label}, {arm}", report.completed, 0, 0,
                         report.fallback_dispatches, report.shed, 0.0,
                         report.throughput_rps(), note])
    return headers, rows


def fleet_scaling(served_requests: int = 96,
                  machine: MachineModel = DGX_A100) -> Table:
    """F25: fleet goodput vs replica count, with and without a kill.

    The workload is the head of a *million-request* ZKProphet-style
    stream — diurnal rate modulation, periodic bursts, a weighted
    three-tenant mix, mixed transform shapes — produced by the lazy
    :func:`~repro.serve.workload.iter_workload` generator.  The first
    row streams the full million requests through the generator
    (counting, never materializing) to show the generator itself is
    fleet-scale; the served rows take the stream's prefix, which is
    byte-identical to generating the smaller spec directly.

    Each fleet size then serves that prefix twice: untouched, and with
    one replica crashed mid-run (``replica-crash`` at heartbeat tick
    2), exercising the failure detector and journaled failover.  Every
    completed output is checked bit-exactly against the reference
    transform and every trace must audit clean — failover is not
    allowed to trade correctness for goodput.  The acceptance contrast
    is against F22: a 4-replica fleet *under a kill* must sustain
    strictly higher goodput than F22's degraded single server.
    """
    from dataclasses import replace

    from repro.analysis.tracecheck import check_trace
    from repro.field.presets import GOLDILOCKS
    from repro.ntt import intt, ntt
    from repro.serve import (
        FleetPolicy, FleetServer, WorkloadSpec, generate_workload,
        iter_workload,
    )
    from repro.sim.faults import FaultPlan

    million = WorkloadSpec(
        requests=1_000_000, log_sizes=(7, 8, 9),
        field_names=(GOLDILOCKS.name,),
        directions=("forward", "inverse"),
        mean_interarrival_s=2e-5, seed=0xF25,
        tenants=("prover-a", "prover-b", "batch"),
        tenant_weights=(6.0, 3.0, 1.0),
        diurnal_period_s=5.0, diurnal_amplitude=0.6,
        burst_every=50, burst_size=8)

    headers = ["replicas", "scenario", "completed", "goodput req/s",
               "p99 ms", "heartbeats", "failovers", "re-homed",
               "replayed", "steals", "overhead ms", "outcome"]
    rows: list[list[object]] = []

    # Part one: walk the whole million-request stream lazily.  Request
    # payloads are seed-derived on demand, so this touches arrival
    # times and tenant draws only.
    count = 0
    horizon = 0.0
    by_tenant: dict[str, int] = {}
    for request in iter_workload(million):
        count += 1
        horizon = request.arrival_s
        by_tenant[request.tenant_id] = \
            by_tenant.get(request.tenant_id, 0) + 1
    mix = "/".join(f"{by_tenant[t]}" for t in sorted(by_tenant))
    rows.append(["-", f"generator stream ({count} requests, "
                      f"{horizon:.1f}s horizon, tenants {mix})",
                 "-", "-", "-", "-", "-", "-", "-", "-", "-",
                 "streamed, not served"])

    workload = generate_workload(replace(million,
                                         requests=served_requests))

    def outcome_of(results, fleet) -> str:
        exact = all(
            list(out) == (intt if r.request.direction == "inverse"
                          else ntt)(r.request.field, list(lane))
            for r in results
            for lane, out in zip(r.request.vectors(), r.outputs))
        findings = check_trace(fleet.trace)
        label = "bit-exact" if exact else "MISMATCH"
        label += ", clean trace" if not findings \
            else f", {len(findings)} finding(s)"
        return label

    for replicas in (1, 2, 4, 8):
        policy = FleetPolicy(replicas=replicas,
                             spread=min(2, replicas),
                             tenant_weights=(("prover-a", 6.0),
                                             ("prover-b", 3.0),
                                             ("batch", 1.0)))
        scenarios: list[tuple[str, FaultPlan | None]] = [("clean", None)]
        if replicas > 1:
            # Kill one loaded replica two heartbeat ticks in: the
            # detector must suspect, fence, and replay its journal
            # onto the survivors mid-run.
            scenarios.append(
                ("one kill",
                 FaultPlan.from_specs(["replica-crash@2:replica=1"],
                                      seed=0xF25)))
        for label, plan in scenarios:
            fleet = FleetServer(machine, policy=policy, faults=plan)
            report = fleet.serve(workload)
            summary = report.summary()
            rows.append([
                replicas, label, report.completed,
                report.goodput_rps(),
                report.latency_percentiles_s()["p99"] * 1e3,
                summary["heartbeats"], summary["failovers"],
                summary["failover_requests"],
                summary["replayed_records"], summary["steals"],
                report.overhead_s * 1e3,
                outcome_of(report.results, fleet),
            ])
        if replicas == 1:
            rows.append([1, "one kill", 0, 0.0, 0.0, 0, 0, 0, 0, 0,
                         0.0, "single point of failure"])
    return headers, rows
