"""Configuration autotuning (the FFTW-style planning layer).

A production transform library does not ask users to pick tile sizes,
decomposition shapes, or engines — it prices the candidates against the
machine model and picks.  Three tuners:

* :func:`machine_plan` — build the UniNTT decomposition tree directly
  from a machine's hierarchy description (fanouts and capacities);
* :func:`autotune_tile` — choose the fast-memory tile for local
  transform passes: bigger tiles mean fewer global-memory round trips
  but must fit the shared-memory capacity;
* :func:`select_engine` — pick the fastest engine (and batch strategy)
  for a workload, returning the ranked table so callers can see the
  margins.  On a :class:`~repro.hw.multinode.MultiNodeMachine` the
  candidate pool also includes every verified schedule the synthesis
  layer offers (flat, pass-rewritten, hierarchical), ranked by the
  same cost model;
* :func:`select_schedule` — rank only the schedule candidates
  (:func:`repro.analysis.synth.enumerate_candidates`), carrying the
  priced :class:`~repro.hw.plancost.PlanCost` for each so callers can
  compare level-by-level, not just by total seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.field.prime_field import PrimeField
from repro.hw.cost import field_limbs
from repro.hw.model import MachineModel
from repro.multigpu.baseline import BaselineFourStepEngine
from repro.multigpu.pairwise import PairwiseExchangeEngine
from repro.multigpu.singlegpu import SingleGpuEngine
from repro.multigpu.unintt import UniNTTEngine
from repro.ntt.plan import Plan, hierarchical_plan
from repro.sim.cluster import SimCluster

__all__ = ["machine_plan", "autotune_tile", "select_engine",
           "EngineChoice", "select_schedule", "ScheduleChoice"]


def machine_plan(machine: MachineModel, field: PrimeField, n: int,
                 leaf_size: int | None = None) -> Plan:
    """The UniNTT decomposition tree for a machine's actual hierarchy.

    Fanouts come straight from the machine description (GPU count, SM
    count rounded to a power of two, warps per block, lanes per warp);
    the leaf is the per-lane register capacity unless overridden.
    """
    element_bytes = field_limbs(field) * 8
    levels = machine.levels(element_bytes)
    fanouts = [(spec.name, spec.plan_fanout) for spec in levels]
    if leaf_size is None:
        leaf_size = max(2, levels[-1].unit_capacity)
    return hierarchical_plan(n, fanouts, leaf_size=leaf_size)


def autotune_tile(machine: MachineModel, field: PrimeField, n: int,
                  gpu_count: int | None = None) -> tuple[int, float]:
    """Choose the local-transform tile minimizing modeled UniNTT time.

    Candidates are powers of two from 64 up to the shared-memory
    capacity (the physical bound on what a thread block can stage).
    Returns (tile, seconds).
    """
    element_bytes = field_limbs(field) * 8
    smem_elems = machine.gpu.smem_per_block_bytes // element_bytes
    if smem_elems < 64:
        raise HardwareModelError(
            f"{machine.gpu.name} shared memory holds fewer than 64 "
            f"elements of {field.name}")
    gpus = gpu_count if gpu_count is not None else machine.gpu_count
    cluster = SimCluster(field, gpus)
    # Small transforms that UniNTT cannot split are priced single-GPU.
    if n >= gpus * gpus:
        def price(tile: int) -> float:
            return UniNTTEngine(cluster, tile=tile).estimate(
                machine, n).total_s
    else:
        def price(tile: int) -> float:
            return SingleGpuEngine(cluster, tile=tile).estimate(
                machine, n).total_s
    best: tuple[int, float] | None = None
    tile = 64
    while tile <= smem_elems:
        seconds = price(tile)
        if best is None or seconds < best[1]:
            best = (tile, seconds)
        tile *= 2
    assert best is not None
    return best


@dataclass(frozen=True)
class EngineChoice:
    """One ranked engine configuration."""

    name: str
    seconds: float
    bottleneck: str


@dataclass(frozen=True)
class ScheduleChoice:
    """One ranked, verified schedule candidate.

    ``seconds`` is the overlap-aware modeled wall-clock
    (:func:`repro.hw.plancost.schedule_seconds`); ``cost`` the
    sequential :class:`~repro.hw.plancost.PlanCost` for level-by-level
    comparison; ``synthesized`` whether the pass framework/synthesis
    produced it (vs the hand-written base schedule).
    """

    name: str
    seconds: float
    cost: object
    synthesized: bool
    schedule: object


def select_schedule(machine, field: PrimeField, n: int,
                    ) -> list[ScheduleChoice]:
    """Rank every verified schedule candidate, fastest first.

    Accepts a single-node :class:`~repro.hw.model.MachineModel` (flat
    and pass-rewritten candidates) or a
    :class:`~repro.hw.multinode.MultiNodeMachine` (plus the
    hierarchical synthesis).  Every candidate has already passed the
    verification gate; a gate failure raises
    :class:`~repro.errors.SchedulePassError` instead of ranking.
    """
    from repro.analysis.synth import enumerate_candidates
    from repro.hw.plancost import price_schedule, schedule_seconds

    choices = []
    for cand in enumerate_candidates(machine, field, n):
        cost = price_schedule(cand.machine, field, cand.schedule)
        seconds = schedule_seconds(cand.machine, field, cand.schedule)
        choices.append(ScheduleChoice(
            name=cand.name, seconds=seconds, cost=cost,
            synthesized=cand.synthesized, schedule=cand.schedule))
    return sorted(choices, key=lambda c: (c.seconds, c.name))


def select_engine(machine, field: PrimeField, n: int,
                  ) -> list[EngineChoice]:
    """Rank all engines for one transform, fastest first.

    On a :class:`~repro.hw.multinode.MultiNodeMachine`, the flat
    engines are priced against its
    :meth:`~repro.hw.multinode.MultiNodeMachine.flattened` form (all
    GPUs behind the network) and the verified schedule candidates join
    the ranking as ``sched:``-prefixed entries.
    """
    if hasattr(machine, "node_count"):
        return _select_engine_cluster(machine, field, n)
    cluster = SimCluster(field, machine.gpu_count)
    tile, _ = autotune_tile(machine, field, n)
    candidates = [
        SingleGpuEngine(cluster, tile=tile),
        BaselineFourStepEngine(cluster, tile=tile),
        PairwiseExchangeEngine(cluster, tile=tile),
        UniNTTEngine(cluster, tile=tile),
    ]
    choices = []
    for engine in candidates:
        try:
            breakdown = engine.estimate(machine, n)
        except Exception:
            continue  # engine constraints (e.g. n < G^2) exclude it
        choices.append(EngineChoice(name=engine.name,
                                    seconds=breakdown.total_s,
                                    bottleneck=breakdown.
                                    dominant_resource()))
    if not choices:
        raise HardwareModelError(
            f"no engine can run n={n} on {machine.name}")
    return sorted(choices, key=lambda c: c.seconds)


def _select_engine_cluster(machine, field: PrimeField,
                           n: int) -> list[EngineChoice]:
    """Cluster ranking: flat engines plus verified schedule candidates."""
    choices = list(select_engine(machine.flattened(), field, n))
    for sched in select_schedule(machine, field, n):
        bottleneck = ("exchange" if sched.cost.exchange_s
                      > sched.cost.compute_s else "compute")
        choices.append(EngineChoice(name=f"sched:{sched.name}",
                                    seconds=sched.seconds,
                                    bottleneck=bottleneck))
    return sorted(choices, key=lambda c: c.seconds)
