"""Multi-scalar multiplication: ``sum_i scalars[i] * points[i]``.

MSM is the other half of ZKP proving time.  Unlike NTT it decomposes
trivially across GPUs — each device sums a slice and a tiny reduction
combines them — which is precisely why, before this paper, end-to-end
provers were multi-GPU for MSM but single-GPU for NTT.

Implementations:

* :func:`msm_naive` — per-term double-and-add; the O(n log r) reference.
* :func:`msm_pippenger` — the bucket method every GPU library uses.
* :class:`MsmWorkModel` — closed-form point-operation counts for the
  cost model (single- and multi-GPU), used by the end-to-end benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CurveError
from repro.zkp.curve import CurveParams, CurvePoint

__all__ = ["msm_naive", "msm_pippenger", "pippenger_window_bits",
           "MsmWorkModel"]


def _check(curve: CurveParams, scalars: Sequence[int],
           points: Sequence[CurvePoint]) -> None:
    if len(scalars) != len(points):
        raise CurveError(
            f"MSM needs equal lengths: {len(scalars)} scalars vs "
            f"{len(points)} points")
    for point in points:
        if point.curve != curve:
            raise CurveError("MSM points must live on the same curve")


def msm_naive(curve: CurveParams, scalars: Sequence[int],
              points: Sequence[CurvePoint]) -> CurvePoint:
    """Reference MSM by independent scalar multiplications."""
    _check(curve, scalars, points)
    acc = curve.infinity()
    for scalar, point in zip(scalars, points):
        acc = acc + point * scalar
    return acc


def pippenger_window_bits(n: int) -> int:
    """The classic window-width heuristic: ~log2(n) - 3, clamped."""
    if n <= 0:
        return 1
    return max(1, min(16, n.bit_length() - 3))


def msm_pippenger(curve: CurveParams, scalars: Sequence[int],
                  points: Sequence[CurvePoint],
                  window_bits: int | None = None) -> CurvePoint:
    """Bucket-method MSM.

    Scalars are cut into ``ceil(bits / c)`` windows of ``c`` bits; per
    window, points are accumulated into ``2^c - 1`` buckets, the buckets
    are combined by a running-sum sweep, and windows fold together with
    ``c`` doublings each.
    """
    _check(curve, scalars, points)
    if not scalars:
        return curve.infinity()
    c = window_bits if window_bits is not None \
        else pippenger_window_bits(len(scalars))
    if c < 1:
        raise CurveError(f"window_bits must be >= 1, got {c}")
    order_bits = curve.order.bit_length()
    windows = -(-order_bits // c)  # ceil
    reduced = [s % curve.order for s in scalars]

    total = curve.infinity()
    for w in range(windows - 1, -1, -1):
        if w != windows - 1:
            for _ in range(c):
                total = total.double()
        buckets: dict[int, CurvePoint] = {}
        shift = w * c
        mask = (1 << c) - 1
        for scalar, point in zip(reduced, points):
            digit = (scalar >> shift) & mask
            if digit:
                existing = buckets.get(digit)
                buckets[digit] = point if existing is None \
                    else existing + point
        # Running-sum sweep: sum_d d * bucket[d] with 2*(2^c) additions.
        running = curve.infinity()
        window_sum = curve.infinity()
        for digit in range(mask, 0, -1):
            bucket = buckets.get(digit)
            if bucket is not None:
                running = running + bucket
            window_sum = window_sum + running
        total = total + window_sum
    return total


@dataclass(frozen=True)
class MsmWorkModel:
    """Closed-form MSM cost in curve point-additions.

    One Jacobian mixed addition is ~12 base-field multiplications and a
    doubling ~8 (the ``add_field_muls`` constants); the cost model
    converts those to seconds with the machine's multiplier throughput.
    """

    order_bits: int = 254
    add_field_muls: int = 12
    double_field_muls: int = 8

    def point_adds(self, n: int, window_bits: int | None = None) -> int:
        """Point additions of a single-device Pippenger MSM of size n."""
        if n <= 0:
            return 0
        c = window_bits if window_bits is not None \
            else pippenger_window_bits(n)
        windows = -(-self.order_bits // c)
        bucket_adds = n  # one accumulation per scalar per window
        sweep_adds = 2 * (1 << c)
        return windows * (bucket_adds + sweep_adds)

    def point_doubles(self, n: int, window_bits: int | None = None) -> int:
        c = window_bits if window_bits is not None \
            else pippenger_window_bits(n)
        windows = -(-self.order_bits // c)
        return (windows - 1) * c

    def field_muls(self, n: int, window_bits: int | None = None) -> int:
        """Total base-field multiplications of one MSM."""
        return (self.point_adds(n, window_bits) * self.add_field_muls
                + self.point_doubles(n, window_bits) * self.double_field_muls)

    def field_muls_multi_gpu(self, n: int, gpu_count: int,
                             window_bits: int | None = None) -> int:
        """Per-GPU multiplications when the MSM splits across GPUs.

        Each GPU runs Pippenger on n/G points; the final combine (G
        partial results) is negligible and charged as G additions.
        """
        if gpu_count < 1:
            raise CurveError(f"gpu_count must be >= 1, got {gpu_count}")
        per_gpu = -(-n // gpu_count)
        return (self.field_muls(per_gpu, window_bits)
                + gpu_count * self.add_field_muls)
