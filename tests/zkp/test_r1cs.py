"""Tests for the R1CS constraint system."""

import pytest

from repro.errors import CircuitError
from repro.field import BN254_FR, TEST_FIELD_97
from repro.zkp import R1CS, Constraint

F = TEST_FIELD_97


class TestConstruction:
    def test_wire_zero_is_constant(self):
        r1cs = R1CS(F, num_public=2)
        assert r1cs.num_wires == 3  # one + 2 public

    def test_negative_public_rejected(self):
        with pytest.raises(CircuitError):
            R1CS(F, num_public=-1)

    def test_new_wire_sequential(self):
        r1cs = R1CS(F)
        assert r1cs.new_wire() == 1
        assert r1cs.new_wire() == 2
        assert r1cs.num_wires == 3

    def test_out_of_range_wire_rejected(self):
        r1cs = R1CS(F)
        with pytest.raises(CircuitError, match="references wire"):
            r1cs.add_constraint({5: 1}, {0: 1}, {0: 1})

    def test_constraint_freezing(self):
        c = Constraint.make({2: 5, 1: 3}, {0: 1}, {3: 1})
        assert c.a == ((1, 3), (2, 5))  # sorted, hashable
        hash(c)


class TestSatisfaction:
    def make_mul_system(self):
        """x * y = z with (x, y, z) private."""
        r1cs = R1CS(F)
        x, y = r1cs.new_wire(), r1cs.new_wire()
        z = r1cs.constrain_mul(x, y)
        return r1cs, x, y, z

    def test_satisfied(self):
        r1cs, x, y, z = self.make_mul_system()
        assert r1cs.is_satisfied([1, 6, 7, 42])

    def test_unsatisfied(self):
        r1cs, *_ = self.make_mul_system()
        assert not r1cs.is_satisfied([1, 6, 7, 43])

    def test_modular_wraparound(self):
        r1cs, *_ = self.make_mul_system()
        assert r1cs.is_satisfied([1, 10, 10, 3])  # 100 mod 97

    def test_witness_shape_checks(self):
        r1cs, *_ = self.make_mul_system()
        with pytest.raises(CircuitError, match="entries"):
            r1cs.is_satisfied([1, 2])
        with pytest.raises(CircuitError, match="constant 1"):
            r1cs.is_satisfied([2, 6, 7, 42])

    def test_constrain_square(self):
        r1cs = R1CS(F)
        x = r1cs.new_wire()
        r1cs.constrain_square(x)
        assert r1cs.is_satisfied([1, 5, 25])
        assert not r1cs.is_satisfied([1, 5, 24])

    def test_constrain_equal(self):
        r1cs = R1CS(F)
        x, y = r1cs.new_wire(), r1cs.new_wire()
        r1cs.constrain_equal(x, y)
        assert r1cs.is_satisfied([1, 9, 9])
        assert not r1cs.is_satisfied([1, 9, 8])

    def test_linear_combination_constraint(self):
        """(2x + 3y) * 1 = z"""
        r1cs = R1CS(F)
        x, y, z = (r1cs.new_wire() for _ in range(3))
        r1cs.add_constraint({x: 2, y: 3}, {0: 1}, {z: 1})
        assert r1cs.is_satisfied([1, 5, 10, 40])


class TestPublicInputs:
    def test_slice(self):
        r1cs = R1CS(BN254_FR, num_public=2)
        r1cs.new_wire()
        witness = [1, 100, 200, 300]
        assert r1cs.public_inputs(witness) == [100, 200]

    def test_no_public(self):
        r1cs = R1CS(F)
        assert r1cs.public_inputs([1]) == []

    def test_repr(self):
        r1cs = R1CS(F, num_public=1)
        assert "1 public" in repr(r1cs)
