"""Findings: the common currency of the static-analysis subsystem.

Every checker — plan verifier, trace race detector, repo lint — reports
:class:`Finding` records and registers the checks it implements as
:class:`Check` metadata.  The CLI renders findings for humans or as
JSON, and exits non-zero when any were produced, so every checker is a
CI gate for free.

This module is deliberately stdlib-only (``dataclasses`` and ``json``),
so the lint entry point works in a bare interpreter.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Check", "Finding", "render_findings", "findings_to_json"]


@dataclass(frozen=True)
class Check:
    """Metadata for one registered check.

    ``check_id`` is namespaced ``<tool>.<rule>`` (``plan.deadlock``,
    ``lint.raw-mod``); ``version`` bumps whenever the rule's semantics
    change, so golden CI output can pin what it was checked against.
    """

    check_id: str
    version: int
    description: str


@dataclass(frozen=True)
class Finding:
    """One violation reported by a checker.

    ``check`` names the rule (a registered ``check_id``), ``where``
    locates the violation (``file:line`` for lint, an op or event path
    for the schedule/trace checkers), and ``message`` says what is
    wrong in one sentence.
    """

    check: str
    message: str
    where: str = ""

    def format(self) -> str:
        location = f"{self.where}: " if self.where else ""
        return f"{location}[{self.check}] {self.message}"


def render_findings(findings: list[Finding], tool: str) -> str:
    """Human-readable report: one line per finding plus a verdict."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{tool}: {len(findings)} {noun}"
                 if findings else f"{tool}: clean")
    return "\n".join(lines)


def findings_to_json(findings: list[Finding], tool: str) -> str:
    """Deterministic JSON report (sorted keys, stable ordering)."""
    payload = {
        "findings": [asdict(finding) for finding in findings],
        "count": len(findings),
        "tool": tool,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
