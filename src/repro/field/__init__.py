"""Finite-field substrate: prime fields, Montgomery form, ZKP presets.

The bulk helpers (``vec_*``) run on a pluggable compute backend — pure
Python by default, NumPy ``uint64`` lanes when selected — see
:mod:`repro.field.backend` and ``docs/BACKENDS.md``.  NumPy is an
optional dependency (``pip install repro[fast]``); the per-field
specialized kernels (``gl_*``, ``bb_*``) are only importable when it
is installed.
"""

from repro.field.backend import (
    BACKEND_ENV_VAR, FieldBackend, NumPyBackend, PythonBackend,
    available_backends, get_backend, numpy_available, set_backend,
    use_backend,
)
from repro.field.limbgen import (
    LimbSchedule, describe_schedule, generate_schedule,
)
from repro.field.montgomery import MontgomeryContext, MontgomeryElement
from repro.field.multilimb import MultiLimbBackend
from repro.field.presets import (
    ALL_FIELDS, BABYBEAR, BLS12_381_FR, BN254_FR, GOLDILOCKS, TEST_FIELD_97,
    TEST_FIELD_7681, ZKP_FIELDS, field_by_name,
)
from repro.field.prime_field import FieldElement, PrimeField
from repro.field.vector import (
    host_values, validate_vector, vec_add, vec_dot, vec_inv, vec_mul,
    vec_neg, vec_pow_series, vec_scale, vec_sub, vec_sum,
)

__all__ = [
    "PrimeField", "FieldElement", "MontgomeryContext", "MontgomeryElement",
    "GOLDILOCKS", "BABYBEAR", "BN254_FR", "BLS12_381_FR",
    "TEST_FIELD_97", "TEST_FIELD_7681", "ZKP_FIELDS", "ALL_FIELDS",
    "field_by_name",
    "vec_add", "vec_sub", "vec_mul", "vec_scale", "vec_neg",
    "vec_pow_series", "vec_inv", "vec_dot", "vec_sum", "validate_vector",
    "host_values",
    "FieldBackend", "PythonBackend", "NumPyBackend", "MultiLimbBackend",
    "available_backends",
    "get_backend", "set_backend", "use_backend", "numpy_available",
    "BACKEND_ENV_VAR",
    "LimbSchedule", "generate_schedule", "describe_schedule",
]

# The hand-tuned per-field numpy kernels need the optional dependency;
# without it the generic backends above still work (pure Python).
if numpy_available():
    from repro.field.babybear import (
        BABYBEAR_P, bb_add, bb_array, bb_intt, bb_mul, bb_neg, bb_ntt,
        bb_scale, bb_sub,
    )
    from repro.field.goldilocks import (
        GOLDILOCKS_P, gl_add, gl_array, gl_intt, gl_mul, gl_neg, gl_ntt,
        gl_scale, gl_sub,
    )

    __all__ += [
        "GOLDILOCKS_P", "gl_array", "gl_add", "gl_sub", "gl_mul",
        "gl_scale", "gl_neg", "gl_ntt", "gl_intt",
        "BABYBEAR_P", "bb_array", "bb_add", "bb_sub", "bb_mul", "bb_scale",
        "bb_neg", "bb_ntt", "bb_intt",
    ]
