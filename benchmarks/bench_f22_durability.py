"""F22: crash recovery and graceful degradation.

Runs the durability/degradation experiment twice over: the crash rows
kill the journaled server at injected journal sequence numbers and
replay to completion; the fault rows pit a retry-only server against
the graceful-degradation controller under escalating fabric faults.
The persisted report is the acceptance artifact for the crash-consistent
serving layer: every crash-recovery row must merge bit-identically to
the uninterrupted run with a clean trace, and at sustained fault rates
the degraded arm must sustain strictly higher goodput than the
retry-only arm (which is expected to die with retries exhausted).
"""


from repro.bench import durability_degradation


def test_f22_durability_degradation(benchmark, emit):
    table = benchmark.pedantic(durability_degradation,
                               rounds=1, iterations=1)
    emit("F22_durability",
         "F22: crash recovery and graceful degradation", table)
    headers, rows = table
    scenario_col = headers.index("scenario")
    outcome_col = headers.index("outcome")
    goodput_col = headers.index("goodput req/s")
    recovery_col = headers.index("recovery ms")

    by_scenario = {row[scenario_col]: row for row in rows}

    for scenario, row in by_scenario.items():
        if "crash@" in scenario or "uninterrupted" in scenario:
            assert row[outcome_col] == "bit-exact, clean trace", (
                f"{scenario}: recovery diverged: {row[outcome_col]}")
        if "crash@" in scenario:
            assert float(row[recovery_col]) > 0.0, (
                f"{scenario}: recovery downtime was not priced")

    retry_only = by_scenario["faults sustained, retry-only"]
    degraded = by_scenario["faults sustained, degraded"]
    assert retry_only[outcome_col].startswith("FAILED"), (
        "retry-only was expected to exhaust its retries under "
        "sustained faults")
    assert degraded[outcome_col] == "bit-exact, clean trace"
    assert float(degraded[goodput_col]) > float(retry_only[goodput_col]), (
        "degraded mode must sustain higher goodput than retry-only "
        "under sustained faults")
