"""Workload generation and (de)serialization."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    WorkloadSpec, generate_workload, workload_from_json, workload_to_json,
)


def test_generation_is_deterministic():
    spec = WorkloadSpec(requests=6, log_sizes=(4, 5),
                        field_names=("Goldilocks", "BabyBear"),
                        mean_interarrival_s=1e-4, deadline_s=1e-3,
                        priority_levels=3, seed=9)
    a = generate_workload(spec)
    b = generate_workload(spec)
    assert a == b
    assert a != generate_workload(WorkloadSpec(
        requests=6, log_sizes=(4, 5),
        field_names=("Goldilocks", "BabyBear"),
        mean_interarrival_s=1e-4, deadline_s=1e-3,
        priority_levels=3, seed=10))


def test_rotation_and_deadlines():
    spec = WorkloadSpec(requests=4, log_sizes=(4, 6),
                        field_names=("Goldilocks",),
                        directions=("forward", "inverse"),
                        deadline_s=2.0, priority_levels=2)
    workload = generate_workload(spec)
    assert [r.log_size for r in workload] == [4, 6, 4, 6]
    assert [r.direction for r in workload] == \
        ["forward", "inverse", "forward", "inverse"]
    assert [r.priority for r in workload] == [0, 1, 0, 1]
    assert all(r.deadline_s == r.arrival_s + 2.0 for r in workload)


def test_burst_when_interarrival_is_zero():
    workload = generate_workload(WorkloadSpec(requests=5))
    assert all(r.arrival_s == 0.0 for r in workload)


def test_json_roundtrip_and_spec_form():
    spec = WorkloadSpec(requests=3, log_sizes=(4,),
                        mean_interarrival_s=1e-4, seed=2)
    workload = generate_workload(spec)
    assert workload_from_json(workload_to_json(workload)) == workload
    from_spec = workload_from_json(
        '{"spec": {"requests": 3, "log_sizes": [4], '
        '"mean_interarrival_s": 1e-4, "seed": 2}}')
    assert from_spec == workload


def test_bad_json_is_a_serve_error():
    with pytest.raises(ServeError):
        workload_from_json("not json")
    with pytest.raises(ServeError):
        workload_from_json("[]")
    with pytest.raises(ServeError):
        workload_from_json('{"neither": 1}')
    with pytest.raises(ServeError):
        workload_from_json('{"spec": {"no_such_knob": 1}}')
    with pytest.raises(ServeError):
        workload_from_json('{"requests": [{"bogus_key": 1}]}')
    # Spec knobs at the top level (forgot to nest under "spec"): the
    # int hits the explicit-list branch and must fail cleanly.
    with pytest.raises(ServeError, match="nest.*'spec'"):
        workload_from_json('{"requests": 6, "log_sizes": [8]}')
    with pytest.raises(ServeError, match="expected an object"):
        workload_from_json('{"requests": [3]}')


def test_spec_validation():
    with pytest.raises(ServeError):
        WorkloadSpec(requests=-1)
    with pytest.raises(ServeError):
        WorkloadSpec(log_sizes=())
    with pytest.raises(ServeError):
        WorkloadSpec(mean_interarrival_s=-1.0)
    with pytest.raises(ServeError):
        WorkloadSpec(priority_levels=0)
