"""Shared driver for data-parallel (numpy) NTTs.

The vectorized field backends (:mod:`repro.field.goldilocks`,
:mod:`repro.field.babybear`, and the generic kernels in
:mod:`repro.field.backend`) differ only in their lane arithmetic; the
transform schedule lives here and is shared.

The schedule is a Stockham autosort: each stage reads the two
*contiguous* halves of the working buffer, writes butterfly outputs
interleaved into a scratch buffer, and ping-pongs the two.  Natural
order in, natural order out, **no bit-reversal gather at all**, and
every lane operation runs on contiguous memory — the same reasons GPU
libraries favour Stockham make it the fastest numpy formulation too
(the strided-view DIF + final gather variant measures ~2x slower).
The output is bit-identical to the scalar radix-2 engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["LaneOps", "vectorized_ntt", "vectorized_intt"]


@dataclass(frozen=True)
class LaneOps:
    """The lane arithmetic a vectorized backend supplies.

    The optional fields cover backends whose packed form is not a 1-D
    ``uint64`` array (the multi-limb big-field kernels): ``unpack``
    converts results back to ints when ``tolist()`` would be wrong,
    ``pack_table`` packs twiddle tables (possibly in a different
    domain, e.g. Montgomery form), ``ntt_core`` runs the whole
    transform in backend-native form instead of the generic Stockham
    loop below, ``fmt`` keys the packed-twiddle cache, and
    ``min_size`` lets a backend demand a larger minimum before the
    lane path beats scalar code.
    """

    field: PrimeField
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    sub: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    scale: Callable[[np.ndarray, int], np.ndarray]
    pack: Callable[[list[int]], np.ndarray]
    unpack: Callable[[np.ndarray], list[int]] | None = None
    pack_table: Callable[[list[int]], np.ndarray] | None = None
    ntt_core: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None
    fmt: str = "u64"
    min_size: int = 32


def _check_size(n: int) -> None:
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")


def vectorized_ntt(ops: LaneOps, values: np.ndarray,
                   cache: TwiddleCache | None = None,
                   root: int | None = None) -> np.ndarray:
    """Forward NTT with whole-stage numpy butterflies (Stockham autosort)."""
    n = values.shape[-1] if values.ndim > 1 else len(values)
    _check_size(n)
    cache = cache or default_cache
    if n == 1:
        return values.copy()
    field = ops.field
    w = field.root_of_unity(n) if root is None else root
    table = cache.packed_powers(
        field, w, n // 2, ops.pack_table or ops.pack, fmt=ops.fmt)
    if ops.ntt_core is not None:
        return ops.ntt_core(values, table)

    x = values.copy()
    y = np.empty_like(x)
    mid = n // 2
    m = n
    stride = 1
    while m > 1:
        half = m // 2
        step = (n // 2) // half
        a = x[:mid]
        b = x[mid:]
        tw = table[::step][:half]
        if stride > 1:
            tw = np.repeat(tw, stride)
        out = y.reshape(half, 2, stride)
        out[:, 0, :] = ops.add(a, b).reshape(half, stride)
        out[:, 1, :] = ops.mul(ops.sub(a, b), tw).reshape(half, stride)
        x, y = y, x
        m = half
        stride *= 2
    return x


def vectorized_intt(ops: LaneOps, values: np.ndarray,
                    cache: TwiddleCache | None = None,
                    root: int | None = None) -> np.ndarray:
    """Inverse vectorized NTT (includes the 1/n scaling)."""
    n = values.shape[-1] if values.ndim > 1 else len(values)
    _check_size(n)
    cache = cache or default_cache
    if n == 1:
        return values.copy()
    field = ops.field
    w = field.root_of_unity(n) if root is None else root
    out = vectorized_ntt(ops, values, cache, root=field.inv(w))
    return ops.scale(out, field.inv(n))
