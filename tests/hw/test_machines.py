"""Tests for the machine presets."""

import pytest

from repro.hw import (
    A100_PCIE_NODE, ALL_MACHINES, DGX1_V100, DGX_A100, DGX_H100,
    machine_by_name,
)


class TestPresets:
    @pytest.mark.parametrize("machine", ALL_MACHINES, ids=lambda m: m.name)
    def test_basic_sanity(self, machine):
        assert machine.gpu_count == 8
        assert machine.gpu.hbm_bandwidth > 0
        assert machine.interconnect.link_bandwidth > 0
        assert machine.max_transform_size(32) > 1 << 28

    def test_generational_ordering(self):
        """Newer GPUs are faster in every dimension we model."""
        assert (DGX1_V100.gpu.word_mul_per_s < DGX_A100.gpu.word_mul_per_s
                < DGX_H100.gpu.word_mul_per_s)
        assert (DGX1_V100.gpu.hbm_bandwidth < DGX_A100.gpu.hbm_bandwidth
                < DGX_H100.gpu.hbm_bandwidth)
        assert (DGX1_V100.interconnect.link_bandwidth
                < DGX_A100.interconnect.link_bandwidth
                < DGX_H100.interconnect.link_bandwidth)

    def test_pcie_node_is_host_staged(self):
        assert not A100_PCIE_NODE.interconnect.peer_to_peer
        assert DGX_A100.interconnect.peer_to_peer

    def test_pcie_shares_gpu_with_dgx(self):
        assert A100_PCIE_NODE.gpu is DGX_A100.gpu

    def test_lookup(self):
        assert machine_by_name("DGX-A100") is DGX_A100
        with pytest.raises(KeyError, match="no preset machine"):
            machine_by_name("DGX-Z9000")

    def test_names_unique(self):
        names = [m.name for m in ALL_MACHINES]
        assert len(names) == len(set(names))
