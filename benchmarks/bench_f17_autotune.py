"""F17: the planning layer — tile autotuning and per-level attribution."""

from repro.bench import format_table
from repro.field import BLS12_381_FR, GOLDILOCKS
from repro.hw import ALL_MACHINES, price_plan
from repro.multigpu import autotune_tile, machine_plan


def test_f17_autotune(benchmark, emit):
    def run():
        headers = ["machine", "field", "best tile", "UniNTT ms",
                   "plan dominant level"]
        rows = []
        n = 1 << 24
        for machine in ALL_MACHINES:
            for field in (GOLDILOCKS, BLS12_381_FR):
                tile, seconds = autotune_tile(machine, field, n)
                plan = machine_plan(machine, field, n)
                cost = price_plan(machine, field, plan)
                rows.append([machine.name, field.name, tile,
                             seconds * 1e3, cost.dominant_level()])
        return headers, rows

    table = benchmark(run)
    emit("F17_autotune",
         "F17: autotuned tiles and plan-level attribution (2^24)", table)
