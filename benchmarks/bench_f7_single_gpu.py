"""F7: single-GPU NTT, naive global-memory kernel vs hierarchical tiled."""

from repro.bench import single_gpu_comparison


def test_f7_single_gpu(benchmark, emit):
    table = benchmark(single_gpu_comparison)
    emit("F7_single_gpu",
         "F7: single-GPU NTT performance (A100, BLS12-381-Fr)", table)
