"""Every example script must run cleanly end to end.

Examples are user-facing documentation; a broken example is a broken
deliverable, so they are executed (not just imported) as part of the
suite.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

EXAMPLES = sorted(name for name in os.listdir(EXAMPLES_DIR)
                  if name.endswith(".py"))


def _load_module(filename: str):
    path = os.path.join(EXAMPLES_DIR, filename)
    name = f"example_{filename[:-3]}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def test_examples_present():
    """The three required examples (plus extras) exist."""
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs(filename, capsys):
    module = _load_module(filename)
    assert hasattr(module, "main"), f"{filename} has no main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{filename} produced no output"
    assert "MISMATCH" not in out
    assert "FAILED" not in out
