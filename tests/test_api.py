"""Public-API consistency checks.

``__all__`` is the published surface; every name in it must resolve,
and the subpackage re-exports must stay importable — the cheapest guard
against stale export lists as the library grows.
"""

import importlib

import pytest

PACKAGES = [
    "repro", "repro.field", "repro.ntt", "repro.hw", "repro.sim",
    "repro.multigpu", "repro.zkp", "repro.bench",
]

MODULES = [
    "repro.errors", "repro.cli",
    "repro.field.prime_field", "repro.field.montgomery",
    "repro.field.presets", "repro.field.vector",
    "repro.field.goldilocks", "repro.field.babybear", "repro.field.simd",
    "repro.ntt.reference", "repro.ntt.radix2", "repro.ntt.radix4",
    "repro.ntt.stockham", "repro.ntt.bluestein",
    "repro.ntt.montgomery_ntt", "repro.ntt.fourstep", "repro.ntt.plan",
    "repro.ntt.recursive", "repro.ntt.coset", "repro.ntt.batch",
    "repro.ntt.polymul", "repro.ntt.twiddle",
    "repro.hw.model", "repro.hw.topology", "repro.hw.machines",
    "repro.hw.cost", "repro.hw.multinode", "repro.hw.plancost", "repro.hw.serialize",
    "repro.sim.device", "repro.sim.cluster", "repro.sim.trace",
    "repro.sim.uniform", "repro.sim.report",
    "repro.multigpu.layout", "repro.multigpu.base",
    "repro.multigpu.accounting", "repro.multigpu.schedule",
    "repro.multigpu.singlegpu", "repro.multigpu.baseline",
    "repro.multigpu.pairwise", "repro.multigpu.unintt",
    "repro.multigpu.hierarchical", "repro.multigpu.batch_engine",
    "repro.multigpu.autotune", "repro.multigpu.polynomial",
    "repro.multigpu.streaming",
    "repro.zkp.domain", "repro.zkp.polynomial", "repro.zkp.curve",
    "repro.zkp.msm", "repro.zkp.r1cs", "repro.zkp.circuits",
    "repro.zkp.qap", "repro.zkp.prover", "repro.zkp.kzg",
    "repro.zkp.merkle", "repro.zkp.fri", "repro.zkp.profiles",
    "repro.zkp.pipeline", "repro.zkp.stark_model", "repro.zkp.stark",
    "repro.zkp.mimc", "repro.zkp.groth16", "repro.zkp.pairing",
    "repro.bench.workloads", "repro.bench.reporting",
    "repro.bench.charts",
    "repro.bench.runners",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_no_duplicate_exports(name):
    module = importlib.import_module(name)
    assert len(module.__all__) == len(set(module.__all__)), \
        f"{name}.__all__ has duplicates"


@pytest.mark.parametrize("name", MODULES)
def test_module_importable(name):
    module = importlib.import_module(name)
    if hasattr(module, "__all__"):
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_every_module_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, \
        f"{name} lacks a meaningful module docstring"


def test_version_exposed():
    import repro

    assert repro.__version__
