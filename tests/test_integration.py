"""Cross-module integration tests.

These exercise the complete pipelines a user of the library would run:
distributed transforms feeding the ZKP prover, the simulator's measured
counters backing the cost model's closed forms across sizes, and the
documented scaling exponents.
"""

import random

import pytest

from repro.field import BN254_FR, TEST_FIELD_7681
from repro.hw import DGX_A100, PipelinedGroup
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, UniNTTEngine,
)
from repro.ntt import intt, ntt
from repro.sim import SimCluster
from repro.zkp import (
    EvaluationDomain, Prover, QAP, square_chain, trusted_setup,
)

F = TEST_FIELD_7681


class TestDistributedProverPipeline:
    """The QAP transforms run bit-exact on the distributed engine."""

    def test_qap_transforms_distributed(self, rng):
        r1cs, witness = square_chain(BN254_FR, steps=50)
        qap = QAP(r1cs)
        n = qap.domain.size  # 64
        g = 4
        a_rows, b_rows, c_rows = qap.witness_rows(witness)

        # Distributed INTT of the witness rows must match the prover's.
        polys = qap.witness_polynomials(witness)
        cluster = SimCluster(BN254_FR, g)
        engine = UniNTTEngine(cluster)
        from repro.multigpu import SpectralLayout
        spectral = SpectralLayout(n=n, gpu_count=g)
        for rows, poly in ((a_rows, polys.a), (b_rows, polys.b),
                           (c_rows, polys.c)):
            vec = DistributedVector.from_values(cluster, rows, spectral)
            coeffs = engine.inverse(vec).to_values()
            # Distributed INTT consumes a spectral-layout spectrum, but
            # the witness rows are a natural-order evaluation vector, so
            # compare against the single-node INTT of the same data.
            assert coeffs == intt(BN254_FR, rows)
            padded = list(poly.coeffs) + [0] * (n - len(poly.coeffs))
            assert intt(BN254_FR, rows) == padded

    def test_full_proof_with_distributed_transform_check(self):
        """Generate a proof and independently recompute one transform
        with the distributed engine."""
        r1cs, witness = square_chain(BN254_FR, steps=20)
        qap = QAP(r1cs)
        tau = 0xFEED
        key = trusted_setup(qap.domain.size, tau)
        prover = Prover(qap, key)
        proof, polys = prover.prove(witness)
        assert prover.check(proof, polys, tau)

        # The A polynomial's domain evaluations, recomputed distributed.
        n = qap.domain.size
        cluster = SimCluster(BN254_FR, 4)
        engine = UniNTTEngine(cluster)
        padded = list(polys.a.coeffs) + [0] * (n - len(polys.a.coeffs))
        vec = DistributedVector.from_values(cluster, padded,
                                            engine.input_layout(n))
        spectrum = engine.forward(vec).to_values()
        a_rows, _, _ = qap.witness_rows(witness)
        assert spectrum == a_rows


class TestCounterScaling:
    """Measured counters follow the documented closed-form exponents."""

    def _forward_counters(self, engine_cls, n, g=4):
        cluster = SimCluster(F, g)
        engine = engine_cls(cluster)
        rng = random.Random(n)
        vec = DistributedVector.from_values(
            cluster, F.random_vector(n, rng), engine.input_layout(n))
        engine.forward(vec)
        return cluster.gpus[0].counters

    @pytest.mark.parametrize("engine_cls",
                             [BaselineFourStepEngine, UniNTTEngine],
                             ids=lambda c: c.__name__)
    def test_exchange_bytes_scale_linearly(self, engine_cls):
        small = self._forward_counters(engine_cls, 128)
        big = self._forward_counters(engine_cls, 512)
        assert big.bytes_sent == 4 * small.bytes_sent

    def test_muls_scale_n_log_n(self):
        c1 = self._forward_counters(UniNTTEngine, 128)
        c2 = self._forward_counters(UniNTTEngine, 512)
        ratio = c2.field_muls / c1.field_muls
        # n log n: 512*9 / 128*7 = 4 * 9/7 ~ 5.14; allow the twiddle term.
        assert 4.0 < ratio < 6.0

    def test_profile_extrapolation_consistent(self):
        """Closed-form profiles at two sizes have the same ratio as the
        measured counters — the extrapolation honesty check."""
        g = 4
        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)

        def profile_exchange(n):
            total = 0
            for step in engine.forward_profile(n):
                phases = step.phases if isinstance(step, PipelinedGroup) \
                    else [step]
                total += sum(p.exchange_bytes for p in phases)
            return total

        measured_ratio = (self._forward_counters(UniNTTEngine, 512).bytes_sent
                          / self._forward_counters(UniNTTEngine,
                                                   128).bytes_sent)
        closed_ratio = profile_exchange(512) / profile_exchange(128)
        assert measured_ratio == closed_ratio


class TestSpectralDomainOps:
    """The ZKP pointwise stage is layout-agnostic end to end."""

    def test_distributed_polynomial_product(self, rng):
        """Multiply two polynomials entirely in the distributed engine
        and compare against the Polynomial class."""
        from repro.zkp import Polynomial

        n, g = 256, 4
        half = n // 2
        a_coeffs = F.random_vector(half, rng)
        b_coeffs = F.random_vector(half, rng)
        p = F.modulus

        cluster = SimCluster(F, g)
        engine = UniNTTEngine(cluster)
        layout = engine.input_layout(n)

        vec_a = DistributedVector.from_values(
            cluster, a_coeffs + [0] * half, layout)
        spec_layout = engine.forward(vec_a).layout
        a_shards = cluster.peek_shards()

        vec_b = DistributedVector.from_values(
            cluster, b_coeffs + [0] * half, layout)
        engine.forward(vec_b)
        for gpu, shard_a in zip(cluster.gpus, a_shards):
            gpu.shard = [x * y % p for x, y in zip(shard_a, gpu.shard)]

        product = engine.inverse(
            DistributedVector(cluster=cluster, layout=spec_layout))
        got = product.to_values()

        expected = (Polynomial(F, a_coeffs) * Polynomial(F, b_coeffs))
        padded = list(expected.coeffs)
        padded += [0] * (n - len(padded))
        assert got == padded


class TestEndToEndConsistency:
    def test_estimate_components_add_up(self):
        from repro.zkp import EndToEndModel

        cluster = SimCluster(BN254_FR, 8)
        model = EndToEndModel(DGX_A100, UniNTTEngine(cluster))
        est = model.proof_cost(1 << 20)
        assert est.total_s == pytest.approx(
            est.ntt_s + est.msm_s + est.witness_s)
        assert est.ntt_s == pytest.approx(model.ntt_seconds(1 << 20))
        assert est.msm_s == pytest.approx(model.msm_seconds(1 << 20))

    def test_domain_and_qap_agree_with_pipeline_charges(self):
        """The pipeline charges exactly the QAP's declared workload."""
        r1cs, _ = square_chain(BN254_FR, steps=100)
        qap = QAP(r1cs)
        assert qap.transform_count == 7
        assert len(qap.msm_sizes) == 4
        domain = EvaluationDomain(BN254_FR, qap.domain.size)
        assert domain == qap.domain


class TestStarkDistributedIntegration:
    """The STARK prover's transforms, recomputed on the multi-GPU engine."""

    def test_trace_lde_matches_distributed_coset_ntt(self, rng):
        from repro.field import GOLDILOCKS
        from repro.multigpu import UniNTTEngine
        from repro.zkp import SquareAffineAir, StarkProver
        from repro.ntt import coset_ntt

        air = SquareAffineAir(field=GOLDILOCKS, length=64)
        trace = air.trace_from_seed(5)
        blowup = 4
        n = air.length * blowup

        # What the STARK prover computes internally:
        coefficients = intt(GOLDILOCKS, trace)
        padded = coefficients + [0] * (n - air.length)
        shift = GOLDILOCKS.multiplicative_generator
        reference = coset_ntt(GOLDILOCKS, padded, shift)

        # The same LDE on the simulated 8-GPU engine, fused coset shift.
        cluster = SimCluster(GOLDILOCKS, 8)
        engine = UniNTTEngine(cluster)
        vec = DistributedVector.from_values(cluster, padded,
                                            engine.input_layout(n))
        out = engine.forward(vec, coset_shift=shift)
        assert out.to_values() == reference
        assert cluster.trace.collective_count() == 1

    def test_stark_proof_over_distributed_lde(self, rng):
        """Full pipeline: the distributed engine could feed the Merkle
        commit — the values agree, so the proof is identical."""
        from repro.field import GOLDILOCKS
        from repro.zkp import (
            SquareAffineAir, StarkProver, StarkVerifier,
        )

        air = SquareAffineAir(field=GOLDILOCKS, length=32)
        prover = StarkProver(air, blowup=4, query_count=8,
                             final_degree=4)
        verifier = StarkVerifier(air, blowup=4, query_count=8,
                                 final_degree=4)
        proof = prover.prove(air.trace_from_seed(11))
        assert verifier.verify(proof)
