"""Tests for the parametric circuit builders."""

import pytest

from repro.errors import CircuitError
from repro.field import BN254_FR, TEST_FIELD_97
from repro.zkp import inner_product, random_circuit, square_chain

F = BN254_FR


class TestSquareChain:
    def test_satisfied(self):
        r1cs, witness = square_chain(F, steps=5)
        assert r1cs.is_satisfied(witness)

    def test_constraint_count(self):
        r1cs, _ = square_chain(F, steps=10)
        assert len(r1cs.constraints) == 11  # 10 squarings + output binding

    def test_public_output_is_power(self):
        r1cs, witness = square_chain(F, steps=3, seed_value=2)
        assert witness[1] == pow(2, 2 ** 3, F.modulus)
        assert r1cs.public_inputs(witness) == [witness[1]]

    def test_tampered_witness_fails(self):
        r1cs, witness = square_chain(F, steps=4)
        witness = list(witness)
        witness[-1] = (witness[-1] + 1) % F.modulus
        assert not r1cs.is_satisfied(witness)

    def test_validation(self):
        with pytest.raises(CircuitError, match="steps"):
            square_chain(F, steps=0)

    def test_small_field(self):
        r1cs, witness = square_chain(TEST_FIELD_97, steps=6)
        assert r1cs.is_satisfied(witness)


class TestInnerProduct:
    def test_satisfied(self):
        r1cs, witness = inner_product(F, length=8)
        assert r1cs.is_satisfied(witness)

    def test_constraint_count(self):
        r1cs, _ = inner_product(F, length=8)
        assert len(r1cs.constraints) == 9  # 8 products + summation

    def test_public_is_inner_product(self):
        r1cs, witness = inner_product(F, length=4, seed=99)
        a = witness[2:6]
        b = witness[6:10]
        expected = sum(x * y for x, y in zip(a, b)) % F.modulus
        assert witness[1] == expected

    def test_validation(self):
        with pytest.raises(CircuitError, match="length"):
            inner_product(F, length=0)

    def test_deterministic(self):
        _, w1 = inner_product(F, length=4, seed=5)
        _, w2 = inner_product(F, length=4, seed=5)
        assert w1 == w2
        _, w3 = inner_product(F, length=4, seed=6)
        assert w1 != w3


class TestRandomCircuit:
    @pytest.mark.parametrize("n", [1, 5, 50])
    def test_satisfied_at_sizes(self, n):
        r1cs, witness = random_circuit(F, constraints=n)
        assert len(r1cs.constraints) == n
        assert r1cs.is_satisfied(witness)

    def test_deterministic_per_seed(self):
        _, w1 = random_circuit(F, constraints=10, seed=3)
        _, w2 = random_circuit(F, constraints=10, seed=3)
        assert w1 == w2

    def test_validation(self):
        with pytest.raises(CircuitError, match="constraints"):
            random_circuit(F, constraints=0)

    def test_tamper_detection(self):
        r1cs, witness = random_circuit(F, constraints=10)
        witness = list(witness)
        witness[5] = (witness[5] + 1) % F.modulus
        assert not r1cs.is_satisfied(witness)
