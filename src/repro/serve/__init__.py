"""Proof-serving layer: deterministic request scheduling and batching.

The subsystem the ZK-prover story needs on top of raw transforms: a
server that accepts a stream of NTT requests, coalesces compatible ones
into cross-request batches, reuses plans and twiddle tables across
requests, and prices every decision — admission, planning, staging,
retries — in the same analytic cost model as the engines themselves.

Entry points:

* :class:`ProofServer` — the scheduler (`serve(requests) -> ServeReport`);
* :func:`generate_workload` / :func:`workload_from_json` — workloads;
* :class:`ServeReport` — latency percentiles, batching and cache
  statistics, and cost-model folding for a completed run.
"""

from repro.serve.cache import (
    PLAN_MISS_MESSAGES, STRATEGIES, PlanCache, PlanEntry, TwiddleLedger,
)
from repro.serve.clock import VirtualClock
from repro.serve.queue import AdmissionQueue
from repro.serve.report import DispatchRecord, ServeReport, percentile
from repro.serve.request import DIRECTIONS, ProofRequest, RequestResult
from repro.serve.scheduler import (
    DISPATCH_MESSAGES, REJECT_MESSAGES, ProofServer,
)
from repro.serve.workload import (
    WorkloadSpec, generate_workload, workload_from_json, workload_to_json,
)

__all__ = [
    "DIRECTIONS", "DISPATCH_MESSAGES", "PLAN_MISS_MESSAGES",
    "REJECT_MESSAGES", "STRATEGIES",
    "AdmissionQueue", "DispatchRecord", "PlanCache", "PlanEntry",
    "ProofRequest", "ProofServer", "RequestResult", "ServeReport",
    "TwiddleLedger", "VirtualClock", "WorkloadSpec",
    "generate_workload", "percentile", "workload_from_json",
    "workload_to_json",
]
