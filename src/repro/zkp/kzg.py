"""KZG polynomial commitments (commit / open / check).

PLONK-family provers commit to polynomials with the Kate-Zaverucha-
Goldberg scheme: a commitment is ``[p(tau)] G`` over a powers-of-tau
SRS, and an opening at point ``z`` is a commitment to the quotient
``q(x) = (p(x) - p(z)) / (x - z)``.  The division is exact iff the
claimed value is correct — that polynomial identity is the scheme's
soundness core and is fully exercised here.

Production verification checks ``e(C - [v]G, H) = e(W, [tau - z]H)``
with a pairing; this reproduction (prover-side acceleration is the
subject) checks the same identity in G1 using the setup trapdoor, which
the toy ceremony of :func:`repro.zkp.prover.trusted_setup` retains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProverError
from repro.zkp.curve import CurvePoint
from repro.zkp.polynomial import Polynomial
from repro.zkp.prover import ProvingKey

__all__ = ["KzgOpening", "KzgScheme"]


@dataclass(frozen=True)
class KzgOpening:
    """An evaluation claim with its witness commitment."""

    point: int
    value: int
    witness: CurvePoint


class KzgScheme:
    """Commitments and openings over one powers-of-tau SRS."""

    def __init__(self, srs: ProvingKey):
        self.srs = srs
        self.curve = srs.curve

    def commit(self, poly: Polynomial) -> CurvePoint:
        """``[poly(tau)] G`` by MSM over the SRS."""
        return self.srs.commit(poly)

    def open(self, poly: Polynomial, point: int) -> KzgOpening:
        """Open ``poly`` at ``point``: value plus quotient commitment.

        The quotient ``(p(x) - p(z)) / (x - z)`` is computed by exact
        synthetic division; a non-zero remainder would indicate a bug,
        so it is asserted away.
        """
        field = poly.field
        point %= field.modulus
        value = poly.evaluate(point)
        numerator = poly - Polynomial(field, [value])
        divisor = Polynomial(field, [field.neg(point), 1])  # x - z
        quotient, remainder = numerator.divmod(divisor)
        if not remainder.is_zero():
            raise ProverError("KZG quotient division left a remainder")
        return KzgOpening(point=point, value=value,
                          witness=self.commit(quotient))

    def check_with_trapdoor(self, commitment: CurvePoint,
                            opening: KzgOpening, tau: int) -> bool:
        """Verify the opening identity at the trapdoor (pairing-free).

        Checks ``C - [value] G == [tau - z] W`` in G1 — exactly the
        relation the pairing equation tests.
        """
        field_order = self.curve.order
        tau %= field_order
        generator = self.curve.generator()
        lhs = commitment - generator * opening.value
        rhs = opening.witness * ((tau - opening.point) % field_order)
        return lhs == rhs

    def batch_open(self, polys: list[Polynomial],
                   point: int) -> list[KzgOpening]:
        """Open several polynomials at the same point (PLONK's round 4)."""
        return [self.open(poly, point) for poly in polys]
