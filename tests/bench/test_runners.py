"""Tests for the experiment drivers: every table is well-formed and the
headline comparisons point the right way."""

import pytest

from repro.bench import (
    ablation, batch_throughput, comm_breakdown, end_to_end, format_table,
    headline_speedups, interconnect_sensitivity, multi_gpu_scaling,
    multi_node_scaling, platforms_table, resilience_overhead,
    single_gpu_comparison, stark_end_to_end, workloads_table,
)

RUNNERS = [
    platforms_table, workloads_table, single_gpu_comparison,
    multi_gpu_scaling, headline_speedups, comm_breakdown, ablation,
    end_to_end, batch_throughput, interconnect_sensitivity,
    multi_node_scaling, stark_end_to_end, resilience_overhead,
]


@pytest.mark.parametrize("runner", RUNNERS, ids=lambda r: r.__name__)
def test_runner_produces_renderable_table(runner):
    headers, rows = runner()
    assert headers and rows
    for row in rows:
        assert len(row) == len(headers)
    # Must render without raising.
    assert format_table(headers, rows, title=runner.__name__)


class TestShapes:
    """The qualitative claims each figure must exhibit."""

    def test_platforms_table_lists_all_machines(self):
        _, rows = platforms_table()
        assert len(rows) == 4

    def test_single_gpu_tiled_always_wins(self):
        headers, rows = single_gpu_comparison()
        speedup_col = headers.index("speedup")
        assert all(row[speedup_col] > 1 for row in rows)

    def test_headline_speedups_above_one(self):
        headers, rows = headline_speedups()
        for row in rows:
            assert row[1] > 1.0  # vs baseline
            assert row[2] > 1.0  # vs single-gpu
        overall = rows[-1]
        assert overall[0] == "OVERALL"
        # The reproduced analogue of the paper's 4.26x average: the
        # UniNTT advantage is between 2x (vs the strong multi-GPU
        # baseline) and ~15x (vs single-GPU).
        assert 1.5 < overall[1] < 6
        assert 5 < overall[2] < 25

    def test_scaling_improves_with_gpus(self):
        headers, rows = multi_gpu_scaling(log_sizes=(24,))
        uni_col = headers.index("unintt ms")
        times = [row[uni_col] for row in rows if row[uni_col] != "-"]
        assert times == sorted(times, reverse=True)

    def test_comm_breakdown_ratio(self):
        headers, rows = comm_breakdown()
        col = headers.index("inter-GPU MB")
        baseline_row = next(r for r in rows if "baseline" in r[0])
        unintt_row = next(r for r in rows if "unintt" in r[0])
        assert baseline_row[col] == pytest.approx(3 * unintt_row[col])
        assert baseline_row[headers.index("collectives")] == 3
        assert unintt_row[headers.index("collectives")] == 1

    def test_ablation_all_on_fastest(self):
        headers, rows = ablation()
        slowdown_col = headers.index("slowdown vs all-on")
        assert rows[0][0] == "all-on"
        assert all(row[slowdown_col] >= 1.0 for row in rows)
        all_off = next(r for r in rows if r[0] == "all-off")
        assert all_off[slowdown_col] > 1.3

    def test_end_to_end_unintt_wins(self):
        headers, rows = end_to_end(log_constraints=(20,))
        total_col = headers.index("total ms")
        by_config = {row[1]: row[total_col] for row in rows}
        assert by_config["unintt"] < by_config["baseline-multintt"]
        assert (by_config["baseline-multintt"]
                < by_config["sota (msm multi, ntt single)"])
        assert (by_config["sota (msm multi, ntt single)"]
                < by_config["all-single-gpu"])

    def test_batch_throughput_improves(self):
        headers, rows = batch_throughput()
        ratio_col = headers.index("vs batch=1")
        ratios = [row[ratio_col] for row in rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] >= 1.0

    def test_interconnect_pcie_gains_most(self):
        headers, rows = interconnect_sensitivity()
        speed_col = headers.index("speedup vs baseline")
        by_machine = {row[0]: row[speed_col] for row in rows}
        assert by_machine["A100-PCIe-node"] == max(by_machine.values())

    def test_interconnect_includes_pairwise_engine(self):
        headers, rows = interconnect_sensitivity()
        pair_col = headers.index("pairwise ms")
        uni_col = headers.index("unintt ms")
        for row in rows:
            assert row[pair_col] > row[uni_col]


class TestNewFigures:
    def test_multi_node_hier_always_wins(self):
        headers, rows = multi_node_scaling()
        col = headers.index("hier vs flat-baseline")
        assert all(row[col] > 1 for row in rows)

    def test_stark_ntt_fraction_largest_for_single(self):
        headers, rows = stark_end_to_end(log_traces=(20,))
        frac_col = headers.index("ntt %")
        by_engine = {row[1]: row[frac_col] for row in rows}
        assert by_engine["single-gpu"] > by_engine["unintt"]
        assert by_engine["single-gpu"] >= 60

    def test_stark_unintt_speedup_exceeds_two(self):
        headers, rows = stark_end_to_end(log_traces=(22,))
        speed_col = headers.index("speedup vs single")
        unintt_row = next(r for r in rows if r[1] == "unintt")
        assert float(unintt_row[speed_col].rstrip("x")) > 2.0

    def test_resilience_every_scenario_recovers(self):
        headers, rows = resilience_overhead()
        outcome_col = headers.index("outcome")
        assert all("bit-exact" in row[outcome_col] for row in rows)
        assert all("clean trace" in row[outcome_col] for row in rows)

    def test_resilience_aborting_faults_cost_more(self):
        headers, rows = resilience_overhead()
        overhead_col = headers.index("overhead")
        by_scenario = {row[0]: float(row[overhead_col].rstrip("x"))
                       for row in rows}
        assert by_scenario["fault-free"] == 1.0
        for scenario in ("transient-comm", "corrupt-shard",
                         "device-death"):
            assert by_scenario[scenario] > 1.0

    def test_resilience_death_completes_on_survivors(self):
        headers, rows = resilience_overhead()
        gpus_col = headers.index("gpus")
        by_scenario = {row[0]: row[gpus_col] for row in rows}
        assert by_scenario["device-death"] < by_scenario["fault-free"]
