"""Multi-node machines: the hierarchy's fifth level.

The paper's recursion does not stop at one node — the same decomposition
that maps a split onto the NVLink fabric maps the next split onto the
inter-node network.  :class:`MultiNodeMachine` composes a node model
with a node count and an inter-node fabric, exposing the five-level
hierarchy ``multi-node / multi-gpu / gpu / block / warp`` to the cost
model (it duck-types the :class:`~repro.hw.model.MachineModel`
attributes the model consumes; ``interconnect``/``gpu_count`` describe
the *intra-node* fabric, which keeps single-node phase pricing exact).

:meth:`MultiNodeMachine.flattened` returns the topology-*unaware* view —
all GPUs behind the inter-node fabric — which is how a flat engine
(plain NCCL all-to-all over every GPU) actually performs: nearly all of
its traffic is inter-node, so pricing everything at the network rate is
the honest model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.model import GpuSpec, LevelSpec, MachineModel
from repro.hw.topology import Interconnect, infiniband

__all__ = ["MultiNodeMachine", "FOUR_NODE_DGX_A100", "ALL_CLUSTERS",
           "cluster_by_name"]


@dataclass(frozen=True)
class MultiNodeMachine:
    """``node_count`` identical nodes on one inter-node network."""

    name: str
    node: MachineModel
    node_count: int
    network: Interconnect

    def __post_init__(self) -> None:
        if self.node_count < 2 or self.node_count & (self.node_count - 1):
            raise HardwareModelError(
                f"node_count must be a power of two >= 2, got "
                f"{self.node_count}")

    # -- MachineModel duck-type (intra-node view) ----------------------------

    @property
    def gpu(self) -> GpuSpec:
        return self.node.gpu

    @property
    def gpu_count(self) -> int:
        """GPUs *per node* (the multi-gpu level's fanout)."""
        return self.node.gpu_count

    @property
    def interconnect(self) -> Interconnect:
        """The intra-node fabric (prices the "multi-gpu" level)."""
        return self.node.interconnect

    # -- cluster shape ---------------------------------------------------------

    @property
    def total_gpus(self) -> int:
        return self.node_count * self.node.gpu_count

    def levels(self, element_bytes: int) -> list[LevelSpec]:
        """Five levels, outermost first."""
        node_capacity = (self.node.gpu_count
                         * self.node.gpu.hbm_capacity_bytes
                         // element_bytes)
        outer = LevelSpec(
            name="multi-node",
            fanout=self.node_count,
            unit_capacity=node_capacity,
            exchange_bandwidth=self.network.alltoall_bandwidth(
                self.node_count),
            exchange_latency=self.network.latency,
        )
        return [outer] + self.node.levels(element_bytes)

    def level(self, name: str, element_bytes: int) -> LevelSpec:
        for spec in self.levels(element_bytes):
            if spec.name == name:
                return spec
        raise HardwareModelError(f"{self.name} has no level named {name!r}")

    def max_transform_size(self, element_bytes: int) -> int:
        total = self.total_gpus * self.node.gpu.hbm_capacity_bytes
        elements = total // (2 * element_bytes)
        return 1 << (elements.bit_length() - 1) if elements else 0

    def flattened(self) -> MachineModel:
        """All GPUs as one flat pool behind the inter-node network."""
        return MachineModel(
            name=f"{self.name}[flat]",
            gpu=self.node.gpu,
            gpu_count=self.total_gpus,
            interconnect=self.network,
        )

    def describe(self) -> str:
        return (f"{self.name}: {self.node_count}x ({self.node.describe()}) "
                f"over {self.network.describe()}")


#: Four DGX-A100 nodes on rail-optimized HDR InfiniBand.
def _make_four_node() -> MultiNodeMachine:
    from repro.hw.machines import DGX_A100
    return MultiNodeMachine(name="4xDGX-A100", node=DGX_A100,
                            node_count=4, network=infiniband())


FOUR_NODE_DGX_A100 = _make_four_node()

ALL_CLUSTERS = (FOUR_NODE_DGX_A100,)


def cluster_by_name(name: str) -> MultiNodeMachine:
    """Look up a preset multi-node cluster by name."""
    for cluster in ALL_CLUSTERS:
        if cluster.name == name:
            return cluster
    raise KeyError(f"no preset cluster named {name!r}; "
                   f"known: {[c.name for c in ALL_CLUSTERS]}")
