"""Graceful degradation: circuit breakers, fault windows, shedding.

When faults arrive faster than bounded retries can absorb them, a
server that keeps retrying the same broken fabric collapses: every
dispatch burns ``max_attempts`` wasted profiles and the queue backs up
until deadlines are unmeetable.  The degradation controller gives
:class:`~repro.serve.scheduler.ProofServer` three coordinated outs,
parameterized by a :class:`DegradePolicy`:

* **Circuit breakers** (:class:`CircuitBreaker`, one per engine — the
  per-field multi-GPU cluster): ``breaker_threshold`` consecutive
  primary failures open the breaker; while open, dispatches skip the
  faulty fabric entirely.  After ``cooldown_s`` of virtual time the
  breaker goes *half-open* and admits exactly one probe attempt on the
  primary engine: success closes it, failure re-opens it.
* **Single-GPU fallback**: a breaker-open (or probe-failed, or
  retry-exhausted) dispatch runs on a dedicated one-GPU cluster with
  the ``replicate`` strategy — zero collectives, so no fabric fault
  can touch it — honestly priced via the engine's own profile, which
  is slower than the healthy multi-GPU path.  Degraded mode trades
  latency for goodput instead of failing the run.
* **Load shedding**: when the windowed dispatch fault rate reaches
  ``shed_fault_rate`` *and* the queue is above its high-water mark
  (``shed_queue_fraction`` of capacity), the least-urgent EDF requests
  are dropped down to the high-water mark.  Every shed is priced like
  a rejection (the front door still answers) and journaled, so a shed
  request can never also complete — a tracecheck rule audits exactly
  that.

All transitions are emitted as ``serve-breaker`` / ``serve-shed``
trace events and tallied in the :class:`~repro.serve.report.ServeReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["BREAKER_STATES", "CircuitBreaker", "DegradePolicy"]

#: Circuit-breaker states, in the order the state machine visits them.
BREAKER_STATES = ("closed", "open", "half-open")


@dataclass(frozen=True)
class DegradePolicy:
    """Tunable knobs of the graceful-degradation controller.

    Attributes
    ----------
    breaker_threshold:
        Consecutive primary-engine failures that open the breaker.
    cooldown_s:
        Virtual seconds an open breaker waits before half-opening.
    window:
        Number of recent dispatches in the fault-rate window.
    shed_fault_rate:
        Windowed fault rate (fraction of recent dispatches that saw at
        least one fault) at which shedding engages.
    shed_queue_fraction:
        Queue high-water mark as a fraction of capacity: shedding only
        engages above it, and drops back down to it.
    """

    breaker_threshold: int = 3
    cooldown_s: float = 1e-3
    window: int = 8
    shed_fault_rate: float = 0.5
    shed_queue_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.breaker_threshold < 1:
            raise ServeError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}")
        if self.cooldown_s < 0:
            raise ServeError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.window < 1:
            raise ServeError(f"window must be >= 1, got {self.window}")
        if not 0 < self.shed_fault_rate <= 1:
            raise ServeError(
                f"shed_fault_rate must be in (0, 1], got "
                f"{self.shed_fault_rate}")
        if not 0 < self.shed_queue_fraction < 1:
            raise ServeError(
                f"shed_queue_fraction must be in (0, 1), got "
                f"{self.shed_queue_fraction}")


class CircuitBreaker:
    """Per-engine breaker: closed -> open -> half-open -> closed/open.

    All timing is virtual (the server's clock); the breaker never reads
    wall time, so degraded runs replay bit-identically like everything
    else in the serving layer.
    """

    def __init__(self, engine: str, policy: DegradePolicy) -> None:
        self.engine = engine
        self.policy = policy
        self.state = "closed"
        self.failure_streak = 0
        self.opened_at_s: float | None = None

    def poll(self, now_s: float) -> str:
        """Advance time-driven transitions; returns the current state."""
        if (self.state == "open" and self.opened_at_s is not None
                and now_s >= self.opened_at_s + self.policy.cooldown_s):
            self.state = "half-open"
        return self.state

    def record_failure(self, now_s: float) -> bool:
        """Note one primary-engine failure; True if the breaker opened."""
        self.failure_streak += 1
        if self.state == "half-open":
            self.state = "open"
            self.opened_at_s = now_s
            return True
        if (self.state == "closed"
                and self.failure_streak >= self.policy.breaker_threshold):
            self.state = "open"
            self.opened_at_s = now_s
            return True
        if self.state == "open":
            self.opened_at_s = now_s
        return False

    def record_success(self) -> bool:
        """Note one primary-engine success; True if the breaker closed."""
        self.failure_streak = 0
        if self.state == "half-open":
            self.state = "closed"
            self.opened_at_s = None
            return True
        return False
