"""Tests for the vectorized Goldilocks kernels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError, NTTError
from repro.field import (
    GOLDILOCKS, GOLDILOCKS_P, gl_add, gl_array, gl_intt, gl_mul, gl_neg,
    gl_ntt, gl_scale, gl_sub,
)
from repro.ntt import intt, ntt

P = GOLDILOCKS_P

#: The values most likely to break carry/reduction logic.
EDGE_VALUES = [0, 1, 2, (1 << 32) - 2, (1 << 32) - 1, 1 << 32,
               (1 << 32) + 1, (1 << 63) - 1, 1 << 63, P - 2, P - 1]


class TestPacking:
    def test_roundtrip(self):
        arr = gl_array(EDGE_VALUES)
        assert arr.dtype == np.uint64
        assert [int(v) for v in arr] == EDGE_VALUES

    def test_rejects_out_of_range(self):
        with pytest.raises(FieldError, match="canonical"):
            gl_array([P])
        with pytest.raises(FieldError, match="canonical"):
            gl_array([-1])
        with pytest.raises(FieldError, match="canonical"):
            gl_array([1.5])


class TestArithmetic:
    def _pairs(self):
        return [(a, b) for a in EDGE_VALUES for b in EDGE_VALUES]

    def test_add_edge_matrix(self):
        pairs = self._pairs()
        a = gl_array([x for x, _ in pairs])
        b = gl_array([y for _, y in pairs])
        assert [int(v) for v in gl_add(a, b)] == \
            [(x + y) % P for x, y in pairs]

    def test_sub_edge_matrix(self):
        pairs = self._pairs()
        a = gl_array([x for x, _ in pairs])
        b = gl_array([y for _, y in pairs])
        assert [int(v) for v in gl_sub(a, b)] == \
            [(x - y) % P for x, y in pairs]

    def test_mul_edge_matrix(self):
        pairs = self._pairs()
        a = gl_array([x for x, _ in pairs])
        b = gl_array([y for _, y in pairs])
        assert [int(v) for v in gl_mul(a, b)] == \
            [x * y % P for x, y in pairs]

    def test_random_against_reference(self, rng):
        xs = GOLDILOCKS.random_vector(500, rng)
        ys = GOLDILOCKS.random_vector(500, rng)
        a, b = gl_array(xs), gl_array(ys)
        assert [int(v) for v in gl_mul(a, b)] == \
            [x * y % P for x, y in zip(xs, ys)]

    def test_neg(self):
        arr = gl_array(EDGE_VALUES)
        assert [int(v) for v in gl_neg(arr)] == [(-v) % P for v in
                                                 EDGE_VALUES]

    def test_scale(self):
        arr = gl_array(EDGE_VALUES)
        s = P - 3
        assert [int(v) for v in gl_scale(arr, s)] == \
            [v * s % P for v in EDGE_VALUES]

    def test_scale_validation(self):
        with pytest.raises(FieldError, match="canonical"):
            gl_scale(gl_array([1]), P)


class TestVectorizedNTT:
    @pytest.mark.parametrize("n", [1, 2, 4, 16, 256, 1024])
    def test_matches_scalar_path(self, n, rng):
        x = GOLDILOCKS.random_vector(n, rng)
        assert [int(v) for v in gl_ntt(x)] == ntt(GOLDILOCKS, x)

    @pytest.mark.parametrize("n", [2, 64, 512])
    def test_roundtrip(self, n, rng):
        x = GOLDILOCKS.random_vector(n, rng)
        assert [int(v) for v in gl_intt(gl_ntt(x))] == x

    def test_interchangeable_with_scalar_inverse(self, rng):
        x = GOLDILOCKS.random_vector(64, rng)
        assert intt(GOLDILOCKS, [int(v) for v in gl_ntt(x)]) == x

    def test_explicit_root(self, rng):
        n = 16
        w = GOLDILOCKS.root_of_unity(n)
        x = GOLDILOCKS.random_vector(n, rng)
        assert [int(v) for v in gl_ntt(x, root=w)] == ntt(GOLDILOCKS, x)
        assert [int(v) for v in gl_intt(gl_ntt(x, root=w), root=w)] == x

    def test_accepts_ndarray(self, rng):
        x = gl_array(GOLDILOCKS.random_vector(32, rng))
        out = gl_ntt(x)
        assert isinstance(out, np.ndarray)

    def test_size_validation(self):
        with pytest.raises(NTTError, match="power of two"):
            gl_ntt([1, 2, 3])
        with pytest.raises(NTTError, match="power of two"):
            gl_intt([1, 2, 3])

    def test_input_not_mutated(self, rng):
        x = gl_array(GOLDILOCKS.random_vector(16, rng))
        before = x.copy()
        gl_ntt(x)
        assert (x == before).all()


@given(st.lists(st.integers(min_value=0, max_value=P - 1),
                min_size=3, max_size=3),
       st.lists(st.integers(min_value=0, max_value=P - 1),
                min_size=3, max_size=3))
def test_mul_property(xs, ys):
    got = [int(v) for v in gl_mul(gl_array(xs), gl_array(ys))]
    assert got == [x * y % P for x, y in zip(xs, ys)]
