"""Deterministic, seeded fault injection for the simulated cluster.

Production multi-GPU NTT deployments fail in a handful of recurring
ways: a link falls back to a slower rate, a collective times out once
and succeeds on retry, one GPU thermally throttles and stretches every
synchronization, a DMA engine writes a flipped bit, or a device drops
off the fabric entirely.  This module models those five as a
declarative, replayable :class:`FaultPlan`:

* ``link-degrade``  — from a chosen collective step onward the fabric
  runs at ``factor`` of its bandwidth (priced, not functional);
* ``transient-comm`` — ``count`` consecutive collectives abort with
  :class:`~repro.errors.TransientCommError` before moving any bytes;
* ``straggler``     — one GPU slows by ``factor``; every later
  collective is gated on it (priced, not functional);
* ``corrupt-shard`` — one in-flight element of a chosen collective is
  silently overwritten (functional: the data really changes);
* ``device-death``  — from a chosen step onward one GPU is gone; every
  collective it participates in raises
  :class:`~repro.errors.DeviceLostError` until the execution layer
  re-shards onto the survivors.
* ``server-crash``  — the *serving process itself* dies: when the
  proof server's write-ahead journal reaches sequence number ``step``
  it raises :class:`~repro.errors.ServerCrashError`, losing all
  in-memory state (queue, caches, trace) but not the journal.  The
  cluster-level injector ignores this kind; it is consumed by
  :class:`~repro.serve.scheduler.ProofServer` and recovered by
  :class:`~repro.serve.durability.RecoveryManager`.

Three further kinds target the *replicated fleet*
(:mod:`repro.serve.fleet`) rather than the fabric.  They key on the
fleet's heartbeat tick index (``step`` = the tick at which the fault
fires) and name their victim with ``replica=R``:

* ``replica-crash``     — replica ``R`` dies at tick ``step``: its
  in-flight batch is lost, its heartbeats stop, and the failure
  detector must notice, fence it, and fail its journal over;
* ``network-partition`` — replica ``R`` is unreachable for ``count``
  ticks starting at ``step``: it can reach neither the durable journal
  nor the heartbeat fabric, so it halts (a partitioned node that kept
  serving could double-emit); it rejoins empty when the partition
  heals;
* ``heartbeat-loss``    — only replica ``R``'s *heartbeats* are lost
  for ``count`` ticks; the replica itself keeps serving.  Short losses
  produce suspicion followed by recovery (a false positive the
  detector must resolve); losses past the failover threshold get the
  replica fenced exactly as if it had died.

Faults trigger on the cluster's *collective step counter* (the index of
the collective invocation, counted across retries) — except
``server-crash``, which keys on the journal sequence number, and the
fleet kinds, which key on the heartbeat tick — so a plan is a pure
function of the run: the same plan over the same engine replays
bit-identically.  Plans parse from compact CLI specs
(``kind@step[:key=value,...]``) and from JSON.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field as dataclass_field

from repro.errors import (
    DeviceLostError, FaultPlanError, TransientCommError,
)
from repro.sim.trace import TraceEvent

__all__ = ["FAULT_KINDS", "FLEET_KINDS", "RESOLUTION_REQUIRED",
           "FaultSpec", "FaultPlan", "FaultInjector", "parse_fault_spec"]

#: The closed vocabulary of injectable fault kinds.
FAULT_KINDS = (
    "link-degrade",
    "transient-comm",
    "straggler",
    "corrupt-shard",
    "device-death",
    "server-crash",
    "replica-crash",
    "network-partition",
    "heartbeat-loss",
)

#: Kinds consumed by the replicated fleet (:mod:`repro.serve.fleet`).
#: They key on the heartbeat tick index and target ``replica=R``; the
#: cluster-level injector never sees them.
FLEET_KINDS = frozenset(
    {"replica-crash", "network-partition", "heartbeat-loss"})

#: Fault kinds that abort or corrupt work and therefore must be
#: answered by a ``retry``/``reshard`` trace event (the tracecheck
#: rule).  Degradations only slow the run down; they need no recovery.
#: ``server-crash`` is deliberately absent: its resolution is a
#: ``serve-recover`` event, audited 1:1 by the dedicated
#: ``trace.unrecovered-crash`` rule instead.  The fleet kinds are
#: likewise absent: their resolution protocol (suspicion answered by
#: failover-or-recovery, 1:1 per replica) is audited by
#: ``trace.unresolved-suspicion``.
RESOLUTION_REQUIRED = frozenset(
    {"transient-comm", "corrupt-shard", "device-death"})

_INT_FIELDS = frozenset({"step", "gpu", "count", "delta", "replica"})
_FLOAT_FIELDS = frozenset({"factor"})


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    step:
        Collective invocation index (0-based, counted across retries) at
        which the fault triggers.  For ``server-crash`` the unit is the
        write-ahead journal sequence number instead.
    gpu:
        Target device for ``straggler`` / ``corrupt-shard`` /
        ``device-death``.
    factor:
        ``link-degrade``: remaining bandwidth fraction in ``(0, 1)``.
        ``straggler``: slowdown multiplier ``> 1``.
    count:
        ``transient-comm``: number of consecutive failing collectives.
        ``network-partition`` / ``heartbeat-loss``: duration in
        heartbeat ticks.
    delta:
        ``corrupt-shard``: non-zero additive offset applied to the
        corrupted element (mod p).
    replica:
        Target replica index for the fleet kinds (``replica-crash`` /
        ``network-partition`` / ``heartbeat-loss``).
    """

    kind: str
    step: int
    gpu: int = 0
    factor: float = 0.5
    count: int = 1
    delta: int = 1
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}")
        if self.step < 0:
            raise FaultPlanError(f"{self.kind}: step must be >= 0, "
                                 f"got {self.step}")
        if self.gpu < 0:
            raise FaultPlanError(f"{self.kind}: gpu must be >= 0, "
                                 f"got {self.gpu}")
        if self.kind == "link-degrade" and not 0 < self.factor < 1:
            raise FaultPlanError(
                f"link-degrade: factor must be in (0, 1), "
                f"got {self.factor}")
        if self.kind == "straggler" and self.factor <= 1:
            raise FaultPlanError(
                f"straggler: factor must be > 1, got {self.factor}")
        if self.kind == "transient-comm" and self.count < 1:
            raise FaultPlanError(
                f"transient-comm: count must be >= 1, got {self.count}")
        if self.kind == "corrupt-shard" and self.delta == 0:
            raise FaultPlanError("corrupt-shard: delta must be non-zero")
        if self.kind in ("network-partition", "heartbeat-loss") \
                and self.count < 1:
            raise FaultPlanError(
                f"{self.kind}: count (duration in heartbeat ticks) "
                f"must be >= 1, got {self.count}")
        if self.replica < 0:
            raise FaultPlanError(
                f"{self.kind}: replica must be >= 0, got {self.replica}")

    def label(self) -> str:
        """Compact human/trace label, e.g. ``device-death@3:gpu=1``."""
        extras = []
        if self.kind in ("straggler", "corrupt-shard", "device-death"):
            extras.append(f"gpu={self.gpu}")
        if self.kind in ("link-degrade", "straggler"):
            extras.append(f"factor={self.factor:g}")
        if self.kind in FLEET_KINDS:
            extras.append(f"replica={self.replica}")
        if self.kind == "transient-comm" and self.count != 1:
            extras.append(f"count={self.count}")
        if self.kind in ("network-partition", "heartbeat-loss"):
            extras.append(f"count={self.count}")
        suffix = ":" + ",".join(extras) if extras else ""
        return f"{self.kind}@{self.step}{suffix}"


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one CLI fault spec: ``kind@step[:key=value,...]``.

    Examples: ``transient-comm@2``, ``device-death@3:gpu=1``,
    ``link-degrade@0:factor=0.5``, ``straggler@1:gpu=2,factor=3``.
    """
    head, _, tail = text.partition(":")
    kind, sep, step_text = head.partition("@")
    if not sep:
        raise FaultPlanError(
            f"fault spec {text!r} is missing '@step' "
            "(expected kind@step[:key=value,...])")
    try:
        step = int(step_text)
    except ValueError:
        raise FaultPlanError(
            f"fault spec {text!r}: step {step_text!r} is not an integer"
        ) from None
    kwargs: dict[str, object] = {}
    if tail:
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise FaultPlanError(
                    f"fault spec {text!r}: expected key=value, "
                    f"got {item!r}")
            if key in _INT_FIELDS:
                try:
                    kwargs[key] = int(value)
                except ValueError:
                    raise FaultPlanError(
                        f"fault spec {text!r}: {key}={value!r} is not "
                        "an integer") from None
            elif key in _FLOAT_FIELDS:
                try:
                    kwargs[key] = float(value)
                except ValueError:
                    raise FaultPlanError(
                        f"fault spec {text!r}: {key}={value!r} is not "
                        "a number") from None
            else:
                raise FaultPlanError(
                    f"fault spec {text!r}: unknown key {key!r}")
    return FaultSpec(kind=kind, step=step, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of faults to inject into one run."""

    seed: int = 0
    faults: tuple[FaultSpec, ...] = dataclass_field(default_factory=tuple)

    @classmethod
    def from_specs(cls, specs: list[str] | tuple[str, ...],
                   seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI spec strings."""
        return cls(seed=seed,
                   faults=tuple(parse_fault_spec(s) for s in specs))

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [asdict(f) for f in self.faults]},
            indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultPlanError(
                "fault plan JSON must be an object with a 'faults' list")
        if not isinstance(data["faults"], list):
            raise FaultPlanError(
                f"fault plan 'faults' must be a list, got "
                f"{type(data['faults']).__name__}")
        faults = []
        for index, entry in enumerate(data["faults"]):
            if not isinstance(entry, dict):
                raise FaultPlanError(
                    f"fault plan entry {index} must be an object, got "
                    f"{type(entry).__name__}")
            unknown = set(entry) - _INT_FIELDS - _FLOAT_FIELDS - {"kind"}
            if unknown:
                raise FaultPlanError(
                    f"fault plan entry has unknown keys {sorted(unknown)}")
            try:
                faults.append(FaultSpec(**entry))
            except (TypeError, ValueError) as error:
                raise FaultPlanError(
                    f"fault plan entry {index} is malformed: "
                    f"{error}") from None
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultPlanError(
                f"fault plan seed must be an integer, got "
                f"{data.get('seed')!r}") from None
        return cls(seed=seed, faults=tuple(faults))

    def crash_steps(self) -> tuple[int, ...]:
        """Journal sequence numbers at which ``server-crash`` fires."""
        return tuple(sorted({f.step for f in self.faults
                             if f.kind == "server-crash"}))

    def without_crashes(self) -> "FaultPlan":
        """The plan minus ``server-crash`` and fleet specs.

        Server crashes are consumed by the proof server's journal
        layer and the fleet kinds by :class:`repro.serve.fleet`'s
        heartbeat loop; the cluster-level :class:`FaultInjector` gets
        this filtered plan so single-field checks and collective hooks
        only ever see fabric faults.
        """
        return FaultPlan(
            seed=self.seed,
            faults=tuple(f for f in self.faults
                         if f.kind != "server-crash"
                         and f.kind not in FLEET_KINDS))

    def fleet_faults(self) -> tuple[FaultSpec, ...]:
        """The fleet-targeted specs (heartbeat-tick keyed), in order."""
        return tuple(f for f in self.faults if f.kind in FLEET_KINDS)

    def without_fleet_faults(self) -> "FaultPlan":
        """The plan minus the fleet kinds (fabric + server-crash)."""
        return FaultPlan(
            seed=self.seed,
            faults=tuple(f for f in self.faults
                         if f.kind not in FLEET_KINDS))

    def recoverable(self, gpu_count: int) -> bool:
        """Whether a resilient engine can complete under this plan.

        Conservative static check used by the chaos harness: at most
        one device death, and the dead GPU must leave a non-empty
        surviving set.
        """
        deaths = [f for f in self.faults if f.kind == "device-death"]
        if len(deaths) > 1:
            return False
        return all(f.gpu < gpu_count for f in deaths)


class FaultInjector:
    """Binds a :class:`FaultPlan` to a live run.

    The :class:`~repro.sim.cluster.SimCluster` collectives call the
    three hooks below; the injector keeps the collective step counter,
    the set of dead devices, and the accumulated *degradation penalty*
    — the extra effective exchange bytes a degraded link or a straggler
    adds to the critical path, which the resilient layer prices into
    the reported cost.
    """

    def __init__(self, plan: FaultPlan, modulus: int):
        if modulus < 2:
            raise FaultPlanError(f"modulus must be >= 2, got {modulus}")
        self.plan = plan
        self.modulus = modulus
        self.collective_index = 0
        self.dead: set[int] = set()
        self.penalty_exchange_bytes = 0
        self.faults_recorded = 0
        self._current_step = -1
        self._announced: set[int] = set()
        self._acknowledged: set[int] = set()

    # -- bookkeeping ---------------------------------------------------------

    def _record_fault(self, cluster, spec: FaultSpec) -> None:
        self.faults_recorded += 1
        cluster.trace.record(TraceEvent(
            kind="fault", level="resilience", detail=spec.label()))

    def _active(self, spec: FaultSpec, step: int) -> bool:
        return spec.step <= step and id(spec) not in self._acknowledged

    # -- hooks called by SimCluster collectives -----------------------------

    def on_collective_start(self, cluster, kind: str, detail: str) -> None:
        """Gate one collective; may raise a comm/device fault.

        Raises *before* any bytes move — an aborted collective charges
        nothing, the retry (if any) pays the full price again.
        """
        step = self.collective_index
        self.collective_index += 1
        self._current_step = step
        for spec in self.plan.faults:
            if spec.kind == "device-death" and self._active(spec, step):
                if spec.gpu < cluster.gpu_count:
                    self.dead.add(spec.gpu)
                    if id(spec) not in self._announced:
                        self._announced.add(id(spec))
                        self._record_fault(cluster, spec)
            elif spec.kind in ("link-degrade", "straggler") \
                    and self._active(spec, step) \
                    and id(spec) not in self._announced:
                self._announced.add(id(spec))
                self._record_fault(cluster, spec)
        if self.dead:
            raise DeviceLostError(
                f"GPU(s) {sorted(self.dead)} lost before {kind} "
                f"(collective step {step}, {detail or 'no detail'})")
        for spec in self.plan.faults:
            if spec.kind == "transient-comm" \
                    and spec.step <= step < spec.step + spec.count \
                    and id(spec) not in self._acknowledged:
                self._record_fault(cluster, spec)
                raise TransientCommError(
                    f"{kind} collective failed transiently at step "
                    f"{step} ({detail or 'no detail'}); retry may "
                    "succeed")

    def corrupt_inflight(self, cluster, gpu_id: int,
                         values: list[int]) -> None:
        """Silently corrupt one element of in-flight data.

        ``values`` is a mutable view of data GPU ``gpu_id`` is about to
        receive in the current collective (a message, a payload, or a
        staged shard).  Only the spec's target GPU is hit, and the
        corrupted slot is chosen by the plan's seeded RNG so replays
        are identical.
        """
        for spec in self.plan.faults:
            if spec.kind != "corrupt-shard" \
                    or spec.step != self._current_step \
                    or spec.gpu != gpu_id \
                    or id(spec) in self._announced:
                continue
            if not values:
                continue
            rng = random.Random(repr((self.plan.seed, spec.step, spec.gpu)))
            slot = rng.randrange(len(values))
            values[slot] = (values[slot] + spec.delta) % self.modulus
            self._announced.add(id(spec))
            self._record_fault(cluster, spec)

    def on_collective_end(self, cluster, kind: str,
                          total_bytes: int) -> None:
        """Accrue degradation penalties for one completed collective."""
        step = self._current_step
        for spec in self.plan.faults:
            if not self._active(spec, step):
                continue
            if spec.kind == "link-degrade":
                self.penalty_exchange_bytes += int(
                    total_bytes * (1.0 / spec.factor - 1.0))
            elif spec.kind == "straggler" and spec.gpu < cluster.gpu_count:
                self.penalty_exchange_bytes += int(
                    total_bytes * (spec.factor - 1.0))

    # -- recovery interface (used by the resilient layer) --------------------

    def surviving_gpus(self, gpu_count: int) -> list[int]:
        """Device ids still alive, in id order."""
        return [g for g in range(gpu_count) if g not in self.dead]

    def acknowledge_deaths(self) -> None:
        """The execution layer re-sharded; dead devices are retired.

        Death specs are marked consumed so the degraded cluster (whose
        device ids are renumbered) is not killed again.
        """
        for spec in self.plan.faults:
            if spec.kind == "device-death":
                self._acknowledged.add(id(spec))
        self.dead.clear()

    def drain_penalty_bytes(self) -> int:
        """Return and reset the accumulated degradation penalty."""
        penalty = self.penalty_exchange_bytes
        self.penalty_exchange_bytes = 0
        return penalty
