"""Stockham autosort NTT.

The Stockham formulation interleaves the butterfly permutation into the
stage writes by ping-ponging between two buffers: natural-order input,
natural-order output, **no bit-reversal pass at all**, at the cost of
not being in-place.  GPU libraries favour it because the reversal pass
is a full extra memory sweep and out-of-place is free when you have a
scratch buffer anyway — the single-buffer-pair analogue of the paper's
overhead-elimination theme.

Each stage ``t`` combines ``m = n_t/2`` butterflies across ``s = 2^t``
interleaved sub-sequences; the stage root is squared between stages.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NTTError
from repro.field.prime_field import PrimeField
from repro.field.vector import vec_add, vec_mul, vec_scale, vec_sub
from repro.ntt.twiddle import TwiddleCache, default_cache

__all__ = ["ntt_stockham", "intt_stockham"]


def _stockham(field: PrimeField, values: Sequence[int], root: int,
              cache: TwiddleCache) -> list[int]:
    size = len(values)
    p = field.modulus
    x = list(values)
    y = [0] * size
    n = size
    stride = 1
    stage_root = root
    while n > 1:
        half = n // 2
        table = cache.powers(field, stage_root, half)
        # Butterfly b reads the contiguous blocks [stride*b, stride*(b+1))
        # of each half of x, so the whole stage is two half-length bulk
        # ops over the active backend; twiddle w_b applies to its entire
        # stride-sized block.
        mid = stride * half
        a_half = x[:mid]
        b_half = x[mid:2 * mid]
        if stride == 1:
            twiddles = table
        else:
            twiddles = [w for w in table for _ in range(stride)]
        sums = vec_add(field, a_half, b_half)
        diffs = vec_mul(field, vec_sub(field, a_half, b_half), twiddles)
        # Interleave: output block 2b <- sums block b, 2b+1 <- diffs block b.
        for butterfly in range(half):
            lo = stride * butterfly
            hi = lo + stride
            out = stride * 2 * butterfly
            y[out:out + stride] = sums[lo:hi]
            y[out + stride:out + 2 * stride] = diffs[lo:hi]
        x, y = y, x
        n = half
        stride *= 2
        stage_root = stage_root * stage_root % p
    return x


def ntt_stockham(field: PrimeField, values: Sequence[int],
                 cache: TwiddleCache | None = None,
                 root: int | None = None) -> list[int]:
    """Forward NTT, natural order in and out, no bit-reversal pass."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    w = field.root_of_unity(n) if root is None else root
    return _stockham(field, values, w, cache)


def intt_stockham(field: PrimeField, values: Sequence[int],
                  cache: TwiddleCache | None = None,
                  root: int | None = None) -> list[int]:
    """Inverse NTT via Stockham (includes the 1/n scaling)."""
    n = len(values)
    if n == 0 or n & (n - 1):
        raise NTTError(f"NTT size must be a power of two, got {n}")
    cache = cache or default_cache
    if n == 1:
        return list(values)
    w = field.root_of_unity(n) if root is None else root
    out = _stockham(field, values, field.inv(w), cache)
    return vec_scale(field, out, field.inv(n % field.modulus))
