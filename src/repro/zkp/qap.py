"""Quadratic Arithmetic Programs: the R1CS-to-polynomial transform.

Groth16 proves an R1CS by encoding it over an evaluation domain H of
size ``n >= #constraints``: constraint i lives at the domain point
``w^i``, so the witness-combined polynomials

    ``A(x) = sum_j w_j A_j(x)``  (and B, C analogously)

satisfy ``A(w^i) * B(w^i) = C(w^i)`` for every i, i.e. ``A*B - C`` is
divisible by the vanishing polynomial ``Z(x) = x^n - 1``.  The prover's
job — and the NTT workload this library accelerates — is computing the
quotient ``H = (A*B - C) / Z``:

1. three size-n **INTTs** turn the witness-combined evaluation rows into
   coefficient form;
2. three size-n **coset NTTs** re-evaluate A, B, C on a coset ``g*H``
   (where Z is the non-zero constant ``g^n - 1``);
3. a pointwise combine and one **coset INTT** recover H's coefficients.

Seven transforms per proof — the operation profile the end-to-end
benchmark charges to the NTT engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CircuitError
from repro.ntt.polymul import next_power_of_two
from repro.zkp.domain import EvaluationDomain
from repro.zkp.polynomial import Polynomial
from repro.zkp.r1cs import R1CS

__all__ = ["QAP", "QapWitnessPolynomials"]


@dataclass(frozen=True)
class QapWitnessPolynomials:
    """The prover's intermediate polynomials for one witness."""

    a: Polynomial
    b: Polynomial
    c: Polynomial
    h: Polynomial

    def all(self) -> tuple[Polynomial, Polynomial, Polynomial, Polynomial]:
        return (self.a, self.b, self.c, self.h)


class QAP:
    """A QAP instance derived from an R1CS."""

    def __init__(self, r1cs: R1CS, domain: EvaluationDomain | None = None):
        if not r1cs.constraints:
            raise CircuitError("cannot build a QAP from an empty R1CS")
        size = next_power_of_two(len(r1cs.constraints))
        if domain is None:
            domain = EvaluationDomain(r1cs.field, size)
        elif domain.size < len(r1cs.constraints):
            raise CircuitError(
                f"domain of size {domain.size} cannot host "
                f"{len(r1cs.constraints)} constraints")
        self.r1cs = r1cs
        self.domain = domain
        self.field = r1cs.field

    def __repr__(self) -> str:
        return (f"QAP({len(self.r1cs.constraints)} constraints over "
                f"domain size {self.domain.size})")

    # -- witness evaluation rows ------------------------------------------------

    def witness_rows(self, witness: Sequence[int]) -> tuple[
            list[int], list[int], list[int]]:
        """Evaluations of A, B, C on the domain for one witness.

        Row i is the sparse dot product of constraint i with the
        witness; rows beyond the constraint count are the zero padding
        of the 0 * 0 = 0 dummy constraints.
        """
        self.r1cs.check_witness_shape(witness)
        n = self.domain.size
        a_rows = [0] * n
        b_rows = [0] * n
        c_rows = [0] * n
        for i, constraint in enumerate(self.r1cs.constraints):
            a_rows[i] = self.r1cs.eval_lc(constraint.a, witness)
            b_rows[i] = self.r1cs.eval_lc(constraint.b, witness)
            c_rows[i] = self.r1cs.eval_lc(constraint.c, witness)
        return a_rows, b_rows, c_rows

    # -- the quotient computation --------------------------------------------------

    def witness_polynomials(self, witness: Sequence[int]) -> QapWitnessPolynomials:
        """Run the seven-transform prover pipeline for one witness.

        Raises :class:`CircuitError` if the witness does not satisfy the
        R1CS (the quotient would not be a polynomial).
        """
        if not self.r1cs.is_satisfied(witness):
            raise CircuitError("witness does not satisfy the R1CS")
        field = self.field
        p = field.modulus
        domain = self.domain
        a_rows, b_rows, c_rows = self.witness_rows(witness)

        # (1) three INTTs: evaluations -> coefficients.
        a_poly = Polynomial(field, domain.intt(a_rows))
        b_poly = Polynomial(field, domain.intt(b_rows))
        c_poly = Polynomial(field, domain.intt(c_rows))

        # (2) three coset NTTs: A*B - C has degree up to 2n-2, but the
        # quotient H has degree <= n-2, so n coset points suffice and Z
        # is the constant g^n - 1 there.
        shift = domain.default_coset_shift()
        z_inv = field.inv(domain.vanishing_on_coset(shift))
        a_coset = a_poly.evaluate_over_coset(domain, shift)
        b_coset = b_poly.evaluate_over_coset(domain, shift)
        c_coset = c_poly.evaluate_over_coset(domain, shift)

        # (3) pointwise quotient + one coset INTT.
        h_coset = [(a * b - c) % p * z_inv % p
                   for a, b, c in zip(a_coset, b_coset, c_coset)]
        h_poly = Polynomial(field, domain.coset_intt(h_coset, shift))
        return QapWitnessPolynomials(a=a_poly, b=b_poly, c=c_poly, h=h_poly)

    def check_divisibility(self, polys: QapWitnessPolynomials) -> bool:
        """Verify ``A*B - C == H*Z`` exactly (coefficient-level check)."""
        z = Polynomial.vanishing(self.field, self.domain.size)
        lhs = polys.a * polys.b - polys.c
        rhs = polys.h * z
        return lhs == rhs

    @property
    def transform_count(self) -> int:
        """NTT-type transforms per proof (the benchmark charge): 7."""
        return 7

    @property
    def msm_sizes(self) -> list[int]:
        """MSM sizes per proof: commitments to A, B, C, H."""
        n = self.domain.size
        return [n, n, n, n - 1]
