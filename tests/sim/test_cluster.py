"""Tests for the simulated cluster collectives."""

import pytest

from repro.errors import SimulationError
from repro.field import BLS12_381_FR, TEST_FIELD_97
from repro.sim import SimCluster

F = TEST_FIELD_97


def make_cluster(gpus=4, field=F):
    cluster = SimCluster(field, gpus)
    cluster.load_shards([[i * 10 + j for j in range(4)]
                         for i in range(gpus)])
    return cluster


class TestConstruction:
    def test_gpu_count_power_of_two(self):
        with pytest.raises(SimulationError, match="power of two"):
            SimCluster(F, 3)

    def test_element_bytes_per_field(self):
        assert SimCluster(F, 2).element_bytes == 8
        assert SimCluster(BLS12_381_FR, 2).element_bytes == 32

    def test_load_and_peek(self):
        cluster = make_cluster()
        shards = cluster.peek_shards()
        assert shards[2] == [20, 21, 22, 23]
        # peeking charges nothing
        assert all(g.counters.bytes_sent == 0 for g in cluster.gpus)

    def test_load_wrong_count(self):
        cluster = SimCluster(F, 4)
        with pytest.raises(SimulationError, match="expected 4 shards"):
            cluster.load_shards([[1]])


class TestAllToAll:
    def test_transpose_semantics(self):
        cluster = SimCluster(F, 2)
        outboxes = [[[1], [2]], [[3], [4]]]
        inboxes = cluster.all_to_all(outboxes)
        assert inboxes == [[[1], [3]], [[2], [4]]]

    def test_byte_accounting_excludes_self(self):
        cluster = SimCluster(F, 2)
        # each GPU sends 3 elements to the other, 5 to itself.
        outboxes = [[[0] * 5, [0] * 3], [[0] * 3, [0] * 5]]
        cluster.all_to_all(outboxes)
        eb = cluster.element_bytes
        for gpu in cluster.gpus:
            assert gpu.counters.bytes_sent == 3 * eb
            assert gpu.counters.bytes_received == 3 * eb
        event = cluster.trace.events[-1]
        assert event.kind == "all-to-all"
        assert event.total_bytes == 6 * eb
        assert event.max_bytes_per_gpu == 3 * eb

    def test_shape_validation(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(SimulationError, match="outbox matrix"):
            cluster.all_to_all([[[1]]])

    def test_conservation(self):
        cluster = make_cluster()
        outboxes = [[[s * 4 + d] for d in range(4)] for s in range(4)]
        cluster.all_to_all(outboxes)
        cluster.check_conservation()


class TestPairwise:
    def test_exchange(self):
        cluster = SimCluster(F, 4)
        received = cluster.pairwise_exchange(
            [1, 0, 3, 2], [[10], [11], [12], [13]])
        assert received == [[11], [10], [13], [12]]
        eb = cluster.element_bytes
        assert all(g.counters.bytes_sent == eb for g in cluster.gpus)

    def test_self_partner_moves_nothing(self):
        cluster = SimCluster(F, 2)
        received = cluster.pairwise_exchange([0, 1], [[5], [6]])
        assert received == [[5], [6]]
        assert all(g.counters.bytes_sent == 0 for g in cluster.gpus)

    def test_non_involution_rejected(self):
        cluster = SimCluster(F, 4)
        with pytest.raises(SimulationError, match="involution"):
            cluster.pairwise_exchange([1, 2, 3, 0], [[]] * 4)

    def test_out_of_range_partner_names_gpu(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(SimulationError,
                           match="GPU 0 has partner 5"):
            cluster.pairwise_exchange([5, 1], [[]] * 2)

    def test_shape_validation(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(SimulationError, match="one partner"):
            cluster.pairwise_exchange([0], [[]])


class TestGatherScatter:
    def test_gather(self):
        cluster = make_cluster()
        shards = cluster.gather_to(0)
        assert shards[3] == [30, 31, 32, 33]
        eb = cluster.element_bytes
        assert cluster.gpus[0].counters.bytes_sent == 0
        assert cluster.gpus[0].counters.bytes_received == 3 * 4 * eb
        assert cluster.gpus[1].counters.bytes_sent == 4 * eb

    def test_gather_invalid_root(self):
        with pytest.raises(SimulationError, match="root"):
            make_cluster().gather_to(9)

    def test_scatter(self):
        cluster = SimCluster(F, 2)
        cluster.scatter_from(0, [[1, 2], [3, 4]])
        assert cluster.peek_shards() == [[1, 2], [3, 4]]
        eb = cluster.element_bytes
        assert cluster.gpus[0].counters.bytes_sent == 2 * eb
        assert cluster.gpus[1].counters.bytes_received == 2 * eb

    def test_scatter_shape(self):
        with pytest.raises(SimulationError, match="expected 2"):
            SimCluster(F, 2).scatter_from(0, [[1]])

    def test_gather_scatter_conserve(self):
        cluster = make_cluster()
        shards = cluster.gather_to(1)
        cluster.scatter_from(1, shards)
        cluster.check_conservation()


class TestCollectivePreconditions:
    """Malformed collective arguments fail with the GPU named, never
    with a bare ``IndexError`` from deep inside the primitive."""

    def test_all_to_all_ragged_row_names_gpu(self):
        cluster = SimCluster(F, 4)
        outboxes = [[[1]] * 4, [[1]] * 4, [[1]] * 2, [[1]] * 4]
        with pytest.raises(SimulationError,
                           match="GPU 2 outbox has 2 destinations"):
            cluster.all_to_all(outboxes)

    def test_pairwise_partner_out_of_range_names_gpu(self):
        cluster = SimCluster(F, 4)
        with pytest.raises(SimulationError,
                           match="GPU 3 has partner 4"):
            cluster.pairwise_exchange([1, 0, 2, 4], [[]] * 4)

    def test_pairwise_negative_partner_names_gpu(self):
        cluster = SimCluster(F, 2)
        with pytest.raises(SimulationError,
                           match="GPU 1 has partner -1"):
            cluster.pairwise_exchange([0, -1], [[]] * 2)

    def test_gather_invalid_root_names_range(self):
        cluster = SimCluster(F, 4)
        with pytest.raises(SimulationError,
                           match=r"invalid root GPU 9 \(cluster has "
                                 r"GPUs 0\.\.3\)"):
            cluster.gather_to(9)

    def test_scatter_invalid_root_names_range(self):
        cluster = SimCluster(F, 4)
        with pytest.raises(SimulationError,
                           match=r"invalid root GPU -1 \(cluster has "
                                 r"GPUs 0\.\.3\)"):
            cluster.scatter_from(-1, [[1]] * 4)

    @pytest.mark.parametrize("call", [
        lambda c: c.all_to_all([[[1]] * 4, [[1]] * 4, [[1]] * 2,
                                [[1]] * 4]),
        lambda c: c.pairwise_exchange([1, 0, 2, 4], [[]] * 4),
        lambda c: c.gather_to(9),
        lambda c: c.scatter_from(9, [[1]] * 4),
    ], ids=["all_to_all", "pairwise", "gather", "scatter"])
    def test_rejected_collective_charges_nothing(self, call):
        cluster = make_cluster()
        with pytest.raises(SimulationError):
            call(cluster)
        assert all(g.counters.bytes_sent == 0 for g in cluster.gpus)
        assert all(g.counters.bytes_received == 0 for g in cluster.gpus)
        assert len(cluster.trace) == 0


class TestPeekPurity:
    """peek_shards is an observer: no counters move, no events appear,
    and mutating the returned copies cannot reach device state."""

    def test_peek_never_charges_or_traces(self):
        cluster = make_cluster()
        cluster.gather_to(0)  # put some real activity on the books
        before = [(g.counters.bytes_sent, g.counters.bytes_received,
                   g.counters.field_muls) for g in cluster.gpus]
        events = len(cluster.trace)
        for _ in range(3):
            cluster.peek_shards()
        after = [(g.counters.bytes_sent, g.counters.bytes_received,
                  g.counters.field_muls) for g in cluster.gpus]
        assert after == before
        assert len(cluster.trace) == events

    def test_peek_returns_copies(self):
        cluster = make_cluster()
        peeked = cluster.peek_shards()
        peeked[0][0] = 77
        assert cluster.gpus[0].shard[0] != 77
        assert cluster.peek_shards()[0][0] != 77


class TestChargeAndTrace:
    def test_charge_local(self):
        cluster = SimCluster(F, 4)
        cluster.charge_local(100, 4096, detail="kernel-x")
        assert all(g.counters.field_muls == 100 for g in cluster.gpus)
        event = cluster.trace.events[-1]
        assert event.kind == "local-compute"
        assert event.field_muls == 400
        assert event.detail == "kernel-x"

    def test_reset_counters_clears_trace(self):
        cluster = make_cluster()
        cluster.gather_to(0)
        cluster.reset_counters()
        assert len(cluster.trace) == 0
        assert all(g.counters.bytes_sent == 0 for g in cluster.gpus)

    def test_conservation_detects_violation(self):
        cluster = SimCluster(F, 2)
        cluster.gpus[0].charge_send(100)
        with pytest.raises(SimulationError, match="conservation"):
            cluster.check_conservation()
