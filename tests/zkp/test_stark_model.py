"""Tests for the STARK end-to-end cost model."""

import pytest

from repro.errors import ProverError
from repro.field import GOLDILOCKS
from repro.hw import A100_PCIE_NODE, DGX_A100
from repro.multigpu import (
    BaselineFourStepEngine, SingleGpuEngine, UniNTTEngine,
)
from repro.sim import SimCluster
from repro.zkp import StarkCostModel


def make(engine_cls, machine=DGX_A100, **kwargs):
    cluster = SimCluster(GOLDILOCKS, machine.gpu_count)
    return StarkCostModel(machine, engine_cls(cluster), **kwargs)


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ProverError, match="columns"):
            make(UniNTTEngine, columns=0)
        with pytest.raises(ProverError, match="blowup"):
            make(UniNTTEngine, blowup=3)
        with pytest.raises(ProverError, match="hashes_per_s"):
            make(UniNTTEngine, hashes_per_s=0)
        with pytest.raises(ProverError, match="trace_length"):
            make(UniNTTEngine).proof_cost(0)


class TestEstimates:
    def test_components_positive_and_additive(self):
        est = make(UniNTTEngine).proof_cost(1 << 18)
        assert est.ntt_s > 0 and est.hash_s > 0 and est.pointwise_s > 0
        assert est.total_s == pytest.approx(
            est.ntt_s + est.hash_s + est.pointwise_s)
        assert est.lde_size == 8 * est.trace_length

    def test_trace_rounds_up(self):
        est = make(UniNTTEngine).proof_cost((1 << 18) + 1)
        assert est.trace_length == 1 << 19

    def test_monotone_in_trace(self):
        model = make(UniNTTEngine)
        assert model.proof_cost(1 << 20).total_s > \
            model.proof_cost(1 << 18).total_s

    def test_more_columns_cost_more(self):
        small = make(UniNTTEngine, columns=32).proof_cost(1 << 18)
        big = make(UniNTTEngine, columns=128).proof_cost(1 << 18)
        assert big.total_s > small.total_s


class TestShape:
    def test_ntt_dominates_without_msm(self):
        """The hash-based motivation: single-GPU NTT is >60% of proof."""
        est = make(SingleGpuEngine).proof_cost(1 << 20)
        assert est.ntt_fraction() > 0.6

    def test_engine_ordering(self):
        times = [make(cls).proof_cost(1 << 20).total_s
                 for cls in (SingleGpuEngine, BaselineFourStepEngine,
                             UniNTTEngine)]
        assert times[2] < times[1] < times[0]

    def test_whole_proof_speedup_exceeds_groth16_case(self):
        """With no MSM, UniNTT moves total proof time more than in the
        pairing-based pipeline."""
        from repro.zkp import EndToEndModel
        from repro.field import BN254_FR

        n = 1 << 20
        stark_single = make(SingleGpuEngine).proof_cost(n).total_s
        stark_uni = make(UniNTTEngine).proof_cost(n).total_s
        stark_gain = stark_single / stark_uni

        groth_single = EndToEndModel(
            DGX_A100, SingleGpuEngine(SimCluster(BN254_FR, 8)),
            msm_gpus=8).proof_cost(n).total_s
        groth_uni = EndToEndModel(
            DGX_A100, UniNTTEngine(SimCluster(BN254_FR, 8)),
            msm_gpus=8).proof_cost(n).total_s
        groth_gain = groth_single / groth_uni

        assert stark_gain > groth_gain

    def test_slow_interconnect_increases_gap(self):
        gain_switch = (make(SingleGpuEngine).proof_cost(1 << 20).total_s
                       / make(UniNTTEngine).proof_cost(1 << 20).total_s)
        gain_pcie = (make(SingleGpuEngine,
                          machine=A100_PCIE_NODE).proof_cost(
                         1 << 20).total_s
                     / make(UniNTTEngine,
                            machine=A100_PCIE_NODE).proof_cost(
                         1 << 20).total_s)
        assert gain_pcie > gain_switch
