"""Vectorized BabyBear arithmetic (numpy uint64 kernels).

BabyBear ``p = 15 * 2^27 + 1`` is a 31-bit prime: products of two
canonical values fit comfortably in 62 bits, so a lane multiply is a
single ``uint64`` product followed by one modular reduction — even
simpler than the Goldilocks kernel, which is exactly why 31-bit fields
are taking over hash-based provers (four of them fit a 128-bit vector
lane on real hardware).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FieldError
from repro.field.presets import BABYBEAR
from repro.field.simd import LaneOps, vectorized_intt, vectorized_ntt
from repro.ntt.twiddle import TwiddleCache

__all__ = ["BABYBEAR_P", "bb_array", "bb_add", "bb_sub", "bb_mul",
           "bb_scale", "bb_neg", "bb_ntt", "bb_intt", "BABYBEAR_OPS"]

#: The BabyBear modulus as a plain int.
BABYBEAR_P = BABYBEAR.modulus

_P = np.uint64(BABYBEAR_P)


def bb_array(values: Sequence[int]) -> np.ndarray:
    """Validate and pack canonical BabyBear values into uint64 lanes."""
    out = np.empty(len(values), dtype=np.uint64)
    for i, v in enumerate(values):
        if not isinstance(v, (int, np.integer)) or not 0 <= v < BABYBEAR_P:
            raise FieldError(
                f"index {i}: {v!r} is not a canonical BabyBear value")
        out[i] = v
    return out


def bb_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition mod p (sums fit in 32 bits; no wrap)."""
    s = a + b
    return np.where(s >= _P, s - _P, s)


def bb_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise subtraction mod p."""
    return np.where(a >= b, a - b, a + _P - b)


def bb_neg(a: np.ndarray) -> np.ndarray:
    """Element-wise negation mod p."""
    return np.where(a == 0, a, _P - a)


def bb_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise multiplication mod p (62-bit products, one %)."""
    return (a * b) % _P


def bb_scale(a: np.ndarray, scalar: int) -> np.ndarray:
    """Multiply every lane by one canonical scalar."""
    if not 0 <= scalar < BABYBEAR_P:
        raise FieldError(f"{scalar} is not a canonical BabyBear value")
    return (a * np.uint64(scalar)) % _P


#: The lane-ops bundle the shared vectorized NTT driver consumes.
BABYBEAR_OPS = LaneOps(field=BABYBEAR, add=bb_add, sub=bb_sub, mul=bb_mul,
                       scale=bb_scale, pack=lambda vals: np.asarray(
                           vals, dtype=np.uint64))


def bb_ntt(values: np.ndarray | Sequence[int],
           cache: TwiddleCache | None = None,
           root: int | None = None) -> np.ndarray:
    """Vectorized forward NTT over BabyBear, natural order in/out."""
    arr = values if isinstance(values, np.ndarray) \
        else bb_array(list(values))
    return vectorized_ntt(BABYBEAR_OPS, arr, cache, root)


def bb_intt(values: np.ndarray | Sequence[int],
            cache: TwiddleCache | None = None,
            root: int | None = None) -> np.ndarray:
    """Vectorized inverse NTT over BabyBear (includes 1/n scaling)."""
    arr = values if isinstance(values, np.ndarray) \
        else bb_array(list(values))
    return vectorized_intt(BABYBEAR_OPS, arr, cache, root)
