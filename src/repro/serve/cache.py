"""Memoizing caches behind the proof-serving scheduler.

Two caches decide how much per-dispatch overhead a served request pays:

* :class:`PlanCache` — keyed by ``machine x field x size x engine``
  (engine = the batch strategy's underlying engine: UniNTT for
  ``split``, the local radix-2 kernel for ``replicate``), it memoizes
  the autotuned tile and the closed-form per-vector/per-slot seconds a
  dispatch needs to choose a strategy and price itself.  A miss runs
  the tuner (:func:`repro.multigpu.autotune.autotune_tile` plus one
  cost-model evaluation per strategy) and is priced at
  :data:`PLAN_MISS_MESSAGES` fabric latency units — the FFTW-style
  planning overhead that cross-request reuse amortizes away.
* :class:`TwiddleLedger` — a bounded :class:`~repro.ntt.twiddle.
  TwiddleCache` plus pricing: the first dispatch touching a
  ``(field, size, direction)`` pays one modular multiplication per
  generated table entry; later dispatches hit and are charged **zero
  recompute** (the satellite invariant the serving tests pin).

Both report hits/misses/evictions so the :class:`~repro.serve.report.
ServeReport` can show exactly what caching bought.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError
from repro.field.prime_field import PrimeField
from repro.hw.cost import CostModel, Phase
from repro.hw.model import MachineModel
from repro.multigpu import accounting as acct
from repro.multigpu.autotune import autotune_tile
from repro.multigpu.unintt import UniNTTEngine
from repro.ntt.twiddle import TwiddleCache
from repro.sim.cluster import SimCluster

__all__ = ["STRATEGIES", "PLAN_MISS_MESSAGES", "PlanEntry", "PlanCache",
           "TwiddleLedger"]

#: Batch strategies the scheduler chooses between (see
#: :class:`repro.multigpu.batch_engine.BatchedDistributedNTT`).
STRATEGIES = ("replicate", "split")

#: Fabric latency units one plan-cache miss costs: the tuner walks the
#: tile candidates and prices each strategy on the host before any
#: kernel launches, a serialization point real serving systems hide
#: exactly the way this cache does — by keying and reusing the result.
PLAN_MISS_MESSAGES = 16


@dataclass(frozen=True)
class PlanEntry:
    """One memoized (machine, field, size, engine) planning result.

    ``unit_seconds`` is the closed-form building block of the batch
    cost: for ``replicate`` the seconds of one GPU-local transform (a
    batch of B vectors on G GPUs costs ``ceil(B/G)`` units); for
    ``split`` the seconds of one full distributed transform (a batch
    costs ``B`` units).  ``available`` is False when the engine cannot
    run the size at all (UniNTT needs ``n >= G**2``).
    """

    machine_name: str
    field_name: str
    log_size: int
    strategy: str
    tile: int
    gpu_count: int
    unit_seconds: float
    available: bool = True

    def batch_seconds(self, vectors: int) -> float:
        """Modeled seconds to transform ``vectors`` lanes as one batch."""
        if not self.available:
            raise ServeError(
                f"{self.strategy} cannot run 2^{self.log_size} on "
                f"{self.machine_name}")
        if vectors < 1:
            raise ServeError(f"batch needs >= 1 vector, got {vectors}")
        if self.strategy == "replicate":
            return -(-vectors // self.gpu_count) * self.unit_seconds
        return vectors * self.unit_seconds


class PlanCache:
    """Keyed memoization of planning results, with service counters."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str, int, str], PlanEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> tuple[tuple[str, str, int, str], ...]:
        """Resident plan keys, sorted (for server snapshots)."""
        return tuple(sorted(self._entries))

    def lookup(self, machine: MachineModel, field: PrimeField,
               log_size: int, strategy: str) -> tuple[PlanEntry, bool]:
        """Return ``(entry, hit)`` for one strategy on one shape."""
        if strategy not in STRATEGIES:
            raise ServeError(
                f"unknown strategy {strategy!r}; known: {STRATEGIES}")
        key = (machine.name, field.name, log_size, strategy)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry, True
        self.misses += 1
        entry = self._plan(machine, field, log_size, strategy)
        self._entries[key] = entry
        return entry, False

    def choose(self, machine: MachineModel, field: PrimeField,
               log_size: int, vectors: int,
               force: str | None = None) -> tuple[PlanEntry, int]:
        """Pick the cheaper strategy for a batch; returns (entry, misses).

        ``force`` pins the strategy (used by tests and by callers that
        already know the answer); both strategies are still planned so
        the decision is reproducible either way.
        """
        misses = 0
        candidates: list[PlanEntry] = []
        for strategy in STRATEGIES:
            entry, hit = self.lookup(machine, field, log_size, strategy)
            misses += 0 if hit else 1
            if entry.available:
                candidates.append(entry)
        if force is not None:
            chosen = [e for e in candidates if e.strategy == force]
            if not chosen:
                raise ServeError(
                    f"forced strategy {force!r} cannot run "
                    f"2^{log_size} on {machine.name}")
            return chosen[0], misses
        if not candidates:
            raise ServeError(
                f"no strategy can run 2^{log_size} on {machine.name}")
        chosen_entry = min(
            candidates, key=lambda e: (e.batch_seconds(vectors),
                                       e.strategy))
        return chosen_entry, misses

    def _plan(self, machine: MachineModel, field: PrimeField,
              log_size: int, strategy: str) -> PlanEntry:
        n = 1 << log_size
        g = machine.gpu_count
        tile, _ = autotune_tile(machine, field, n)
        if strategy == "replicate":
            model = CostModel(machine, field)
            eb = model.element_bytes
            unit = model.estimate([Phase(
                name="replicated-ntt",
                field_muls=acct.local_ntt_muls(n),
                mem_bytes=acct.local_ntt_mem_bytes(n, eb, tile),
            )]).total_s
            return PlanEntry(machine.name, field.name, log_size,
                             strategy, tile, g, unit)
        if n < g * g:  # UniNTT needs n >= G^2; split is unavailable
            return PlanEntry(machine.name, field.name, log_size,
                             strategy, tile, g, float("inf"),
                             available=False)
        scratch = SimCluster(field, g)
        unit = UniNTTEngine(scratch, tile=tile).estimate(machine, n).total_s
        return PlanEntry(machine.name, field.name, log_size, strategy,
                         tile, g, unit)


class TwiddleLedger:
    """Priced twiddle residency for the serving layer.

    The ledger mirrors what a real deployment keeps in device memory:
    the root-power tables each dispatched shape needs.  ``prepare``
    touches the tables one batch will use and returns the *recompute
    phase* that dispatch owes — ``None`` on a full hit, a
    ``field_muls`` phase equal to the generated entries on a miss.
    """

    def __init__(self, max_tables: int | None = None) -> None:
        self.cache = TwiddleCache(max_tables=max_tables)
        self._shapes: dict[tuple[str, int, str], None] = {}

    def shapes(self) -> tuple[tuple[str, int, str], ...]:
        """Shapes ever prepared, sorted (for server snapshots).

        Under an LRU bound some listed tables may have been evicted;
        re-preparing the list at restore time replays the same
        insertions, so residency after recovery matches.
        """
        return tuple(sorted(self._shapes))

    def prepare(self, field: PrimeField, n: int,
                direction: str) -> tuple[Phase | None, bool]:
        """Touch the tables for one shape; return (phase, hit)."""
        self._shapes.setdefault((field.name, n, direction), None)
        generated_before = self.cache.generated_entries
        misses_before = self.cache.misses
        if direction == "inverse":
            self.cache.inverse(field, n)
        else:
            self.cache.forward(field, n)
        self.cache.bitrev(n)
        generated = self.cache.generated_entries - generated_before
        hit = self.cache.misses == misses_before
        if generated == 0:
            return None, hit
        return Phase(name="serve-twiddle-gen", field_muls=generated), hit

    def stats(self) -> dict[str, int]:
        return self.cache.stats()
