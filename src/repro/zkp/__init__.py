"""ZKP substrate: polynomials, curves, MSM, R1CS/QAP, and the prover."""

from repro.zkp.circuits import inner_product, random_circuit, square_chain
from repro.zkp.curve import BN254_FP, BN254_G1, CurveParams, CurvePoint
from repro.zkp.domain import EvaluationDomain
from repro.zkp.fri import (
    FriParameters, FriProof, FriProver, FriQueryRound, FriVerifier,
    Transcript, fri_query_indices, low_degree_extend,
)
from repro.zkp.groth16 import (
    Groth16Proof, Groth16Prover, Groth16ProvingKey, Groth16Trapdoor,
    Groth16VerifyingKey, groth16_self_check, groth16_setup,
)
from repro.zkp.kzg import KzgOpening, KzgScheme
from repro.zkp.pairing import (
    TOY_PAIRING_CURVE, TOY_PAIRING_FP, Fp2, kzg_check_with_pairing,
    tate_pairing,
)
from repro.zkp.merkle import MerklePath, MerkleTree, hash_leaf, hash_nodes
from repro.zkp.msm import (
    MsmWorkModel, msm_naive, msm_pippenger, pippenger_window_bits,
)
from repro.zkp.pipeline import EndToEndModel, ProofCostEstimate
from repro.zkp.profiles import (
    ALL_PROFILES, GROTH16_PROFILE, PLONK_PROFILE, ProofSystemProfile,
    TransformOp, profile_by_name,
)
from repro.zkp.polynomial import Polynomial
from repro.zkp.prover import Proof, Prover, ProvingKey, trusted_setup
from repro.zkp.qap import QAP, QapWitnessPolynomials
from repro.zkp.r1cs import Constraint, LinearCombination, R1CS
from repro.zkp.mimc import MiMC, mimc_chain_circuit, mimc_preimage_circuit
from repro.zkp.stark import (
    SquareAffineAir, StarkProof, StarkProver, StarkVerifier,
)
from repro.zkp.stark_model import StarkCostEstimate, StarkCostModel

__all__ = [
    "EvaluationDomain", "Polynomial",
    "CurveParams", "CurvePoint", "BN254_G1", "BN254_FP",
    "msm_naive", "msm_pippenger", "pippenger_window_bits", "MsmWorkModel",
    "R1CS", "Constraint", "LinearCombination",
    "square_chain", "inner_product", "random_circuit",
    "QAP", "QapWitnessPolynomials",
    "Prover", "Proof", "ProvingKey", "trusted_setup",
    "EndToEndModel", "ProofCostEstimate",
    "ProofSystemProfile", "TransformOp", "GROTH16_PROFILE", "PLONK_PROFILE",
    "ALL_PROFILES", "profile_by_name",
    "KzgScheme", "KzgOpening",
    "MerkleTree", "MerklePath", "hash_leaf", "hash_nodes",
    "FriParameters", "FriProver", "FriVerifier", "FriProof",
    "FriQueryRound", "Transcript", "low_degree_extend",
    "StarkCostModel", "StarkCostEstimate",
    "MiMC", "mimc_preimage_circuit", "mimc_chain_circuit",
    "SquareAffineAir", "StarkProver", "StarkVerifier", "StarkProof",
    "fri_query_indices",
    "Groth16Trapdoor", "Groth16ProvingKey", "Groth16VerifyingKey",
    "Groth16Proof", "groth16_setup", "Groth16Prover",
    "groth16_self_check",
    "TOY_PAIRING_CURVE", "TOY_PAIRING_FP", "Fp2", "tate_pairing",
    "kzg_check_with_pairing",
]
