"""F24: verified schedule synthesis vs the hand-written schedules."""

from repro.bench import schedule_synthesis
from repro.field import BLS12_381_FR
from repro.hw import FOUR_NODE_DGX_A100
from repro.multigpu import select_schedule


def test_f24_schedsynth(benchmark, emit):
    table = benchmark.pedantic(schedule_synthesis, rounds=1,
                               iterations=1)
    emit("F24_schedsynth",
         "F24: verified schedule synthesis (hand-written vs rewritten "
         "vs hierarchical)",
         table)


def test_f24_synthesized_wins_multinode():
    # The acceptance claim: on a multi-node topology the autotuner picks
    # a synthesized schedule, and it beats the hand-written flat one on
    # the validated sequential PlanCost, not just the overlap model.
    choices = select_schedule(FOUR_NODE_DGX_A100, BLS12_381_FR, 1 << 24)
    assert choices[0].synthesized
    flat = next(c for c in choices if not c.synthesized)
    hier = next(c for c in choices if "@hier[" in c.name)
    assert hier.cost.total_s < flat.cost.total_s
    assert hier.seconds < flat.seconds
