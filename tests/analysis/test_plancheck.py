"""Plan verifier: clean schedules pass, every seeded bug is caught."""

import pytest

from repro.analysis import analyze_plan, seed_bug, verify_schedule
from repro.analysis.plancheck import SEED_BUGS, _wait_cycles, check_cost
from repro.field import GOLDILOCKS
from repro.hw import machine_by_name
from repro.multigpu.schedule import (
    ablation_grid, build_pairwise_schedule, build_unintt_schedule,
)

EB = 8  # Goldilocks element bytes
MACHINE = machine_by_name("DGX-A100").with_gpu_count(4)


def checks_of(findings):
    return {finding.check for finding in findings}


class TestCleanSchedules:
    @pytest.mark.parametrize("label,options",
                             ablation_grid(), ids=lambda v: str(v))
    def test_unintt_grid_verifies(self, label, options):
        schedule = build_unintt_schedule(256, 4, EB, options)
        assert verify_schedule(schedule, machine=MACHINE) == []

    def test_pairwise_verifies(self):
        schedule = build_pairwise_schedule(256, 8, EB)
        assert verify_schedule(schedule) == []

    def test_cost_checks_clean(self):
        schedule = build_unintt_schedule(256, 4, EB)
        assert check_cost(MACHINE, GOLDILOCKS, 256,
                          schedule=schedule) == []


class TestSeededBugs:
    """Every fault :func:`seed_bug` injects must be detected."""

    def test_drop_transfer_caught_as_lost_and_stale_read(self):
        # The acceptance-criteria fixture: one dropped message must
        # produce BOTH a lost-transfer finding at the exchange and a
        # read-before-write at the op consuming the stale shard.
        schedule = seed_bug(build_unintt_schedule(256, 4, EB),
                            "drop-transfer")
        found = checks_of(verify_schedule(schedule))
        assert "plan.lost-transfer" in found
        assert "plan.read-before-write" in found

    def test_duplicate_transfer(self):
        schedule = seed_bug(build_unintt_schedule(256, 4, EB),
                            "duplicate-transfer")
        assert checks_of(verify_schedule(schedule)) == {
            "plan.duplicate-transfer"}

    def test_reorder_is_read_before_write(self):
        schedule = seed_bug(build_unintt_schedule(256, 4, EB), "reorder")
        findings = verify_schedule(schedule)
        assert checks_of(findings) == {"plan.read-before-write"}
        # The inverted dependency trips at the exchange AND downstream.
        assert len(findings) >= 2

    def test_wrong_level(self):
        schedule = seed_bug(build_unintt_schedule(256, 4, EB),
                            "wrong-level")
        assert "plan.level-mismatch" in checks_of(
            verify_schedule(schedule))

    def test_deadlock_cycle_reported(self):
        schedule = seed_bug(build_pairwise_schedule(256, 4, EB),
                            "deadlock")
        findings = verify_schedule(schedule)
        found = checks_of(findings)
        assert "plan.deadlock" in found
        # Nothing after the deadlocked stage may consume its output.
        assert "plan.read-before-write" in found
        cycle = [f for f in findings if f.check == "plan.deadlock"][0]
        assert "->" in cycle.message

    def test_deadlock_requires_a_pairwise_op(self):
        with pytest.raises(ValueError, match="no PairwiseOp"):
            seed_bug(build_unintt_schedule(256, 4, EB), "deadlock")

    def test_unknown_bug_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown seed bug"):
            seed_bug(build_unintt_schedule(256, 4, EB), "nope")

    def test_seeded_cost_mismatch(self):
        schedule = seed_bug(build_unintt_schedule(256, 4, EB),
                            "drop-transfer")
        assert "plan.cost-mismatch" in checks_of(
            check_cost(MACHINE, GOLDILOCKS, 256, schedule=schedule))


class TestWaitCycles:
    def test_involution_has_no_cycles(self):
        assert _wait_cycles((2, 3, 0, 1), 4) == []

    def test_self_partners_are_fine(self):
        assert _wait_cycles((0, 1, 2, 3), 4) == []

    def test_rotation_is_one_cycle(self):
        cycles = _wait_cycles((1, 2, 3, 0), 4)
        assert cycles == [(0, 1, 2, 3)]

    def test_stranded_chain_detected_by_verifier(self):
        # GPU 2 waits on 3 while 3 is its own partner: no cycle, still
        # a deadlock.
        from dataclasses import replace

        from repro.multigpu.schedule import PairwiseOp

        schedule = build_pairwise_schedule(256, 4, EB)
        ops = list(schedule.ops)
        index = next(i for i, op in enumerate(ops)
                     if isinstance(op, PairwiseOp))
        ops[index] = replace(ops[index], partner_of=(1, 0, 3, 3))
        findings = verify_schedule(schedule.with_ops(tuple(ops)))
        assert "plan.deadlock" in checks_of(findings)


class TestAnalyzePlan:
    def test_clean_run_returns_schedule_and_no_findings(self):
        schedule, findings = analyze_plan(256, 4, GOLDILOCKS,
                                          machine=MACHINE)
        assert schedule.num_gpus == 4
        assert findings == []

    def test_every_seed_bug_is_caught(self):
        for kind in SEED_BUGS:
            engine = "pairwise" if kind == "deadlock" else "unintt"
            _, findings = analyze_plan(256, 4, GOLDILOCKS, engine=engine,
                                       machine=MACHINE,
                                       seed_bugs=(kind,))
            assert findings, f"seed bug {kind!r} went undetected"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            analyze_plan(256, 4, GOLDILOCKS, engine="warp9")


class TestBadFusion:
    def test_bad_fusion_is_read_before_write(self):
        # Merging across the exchange makes the collective consume a
        # tag nobody produces anymore.
        schedule = seed_bug(build_unintt_schedule(256, 4, EB),
                            "bad-fusion")
        assert "plan.read-before-write" in checks_of(
            verify_schedule(schedule))

    def test_bad_fusion_merges_across_the_collective(self):
        schedule = seed_bug(build_unintt_schedule(256, 4, EB),
                            "bad-fusion")
        assert any("+" in op.name for op in schedule.ops)

    def test_the_legitimate_merge_pass_is_not_flagged(self):
        # The illegal fusion's legal twin: merge-local-ops only fuses
        # ADJACENT ops, and its product stays clean.
        from repro.analysis.passes import merge_local_ops
        from repro.multigpu.schedule import UniNTTOptions

        options = UniNTTOptions(fused_twiddle=False)
        schedule = merge_local_ops(
            build_unintt_schedule(256, 4, EB, options))
        assert any("+" in op.name for op in schedule.ops)
        assert verify_schedule(schedule) == []


class TestDeterministicFindings:
    def seeded(self):
        return seed_bug(
            seed_bug(build_unintt_schedule(256, 4, EB), "drop-transfer"),
            "wrong-level")

    def test_findings_sorted_by_op_then_check_then_message(self):
        findings = verify_schedule(self.seeded(), machine=MACHINE)
        keys = []
        for finding in findings:
            prefix = finding.where.split(".ops[")[1]
            keys.append((int(prefix.split("]")[0]), finding.check,
                         finding.message))
        assert keys == sorted(keys)

    def test_json_report_is_byte_reproducible(self):
        from repro.analysis import findings_to_json

        first = findings_to_json(
            verify_schedule(self.seeded(), machine=MACHINE), tool="plan")
        second = findings_to_json(
            verify_schedule(self.seeded(), machine=MACHINE), tool="plan")
        assert first == second
        assert json_loads_ok(first)


def json_loads_ok(payload):
    import json

    return json.loads(payload)["count"] >= 1
