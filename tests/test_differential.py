"""Differential fuzz harness: every transform path agrees bit-exactly.

The reference DFT (:func:`repro.ntt.reference.dft`) is the oracle.
Hypothesis draws a field, a size, and input data, and every local
kernel (radix-2, radix-4, Stockham, four-step, recursive plan), every
distributed engine the size admits (single-GPU, baseline four-step,
pairwise, UniNTT), and the full serving path must produce the same
bytes.  Any divergence between two implementations of the same
transform is a bug by definition — there is no tolerance, these are
exact integer algorithms.

Runs under the seeded "repro"/"ci" hypothesis profiles from
``tests/conftest.py`` so CI fuzzing is deterministic.
"""

import pytest
from hypothesis import given, strategies as st

from repro.field import GOLDILOCKS, TEST_FIELD_97, TEST_FIELD_7681
from repro.multigpu import (
    BaselineFourStepEngine, DistributedVector, PairwiseExchangeEngine,
    SingleGpuEngine, UniNTTEngine,
)
from repro.ntt import (
    balanced_plan, dft, four_step_intt, four_step_ntt, idft, intt,
    intt_radix4, intt_stockham, ntt, ntt_radix4, ntt_stockham, plan_intt,
    plan_ntt,
)
from repro.serve import ProofRequest, ProofServer
from repro.sim import SimCluster

#: Fields the fuzzer rotates through: both tiny test primes plus one
#: production 64-bit field keeps cases fast while covering one- and
#: multi-limb arithmetic.
FUZZ_FIELDS = (TEST_FIELD_97, TEST_FIELD_7681, GOLDILOCKS)

#: The local kernels under differential test, as (name, fwd, inv).
KERNELS = (
    ("radix2", ntt, intt),
    ("radix4", ntt_radix4, intt_radix4),
    ("stockham", ntt_stockham, intt_stockham),
    ("fourstep", four_step_ntt, four_step_intt),
    ("recursive",
     lambda f, x: plan_ntt(f, balanced_plan(len(x), leaf_size=4), x),
     lambda f, x: plan_intt(f, balanced_plan(len(x), leaf_size=4), x)),
)


@st.composite
def transform_case(draw, min_log: int = 2, max_log: int = 6):
    """(field, values): a size the field supports plus random data."""
    field = draw(st.sampled_from(FUZZ_FIELDS))
    log_n = draw(st.integers(min_log, min(max_log, field.two_adicity)))
    n = 1 << log_n
    values = draw(st.lists(st.integers(0, field.modulus - 1),
                           min_size=n, max_size=n))
    return field, values


@given(case=transform_case())
def test_every_kernel_matches_reference_forward(case):
    field, values = case
    want = dft(field, values)
    for name, forward, _ in KERNELS:
        got = forward(field, list(values))
        assert got == want, f"{name} diverged from the reference DFT"


@given(case=transform_case())
def test_every_kernel_matches_reference_inverse(case):
    field, values = case
    want = idft(field, values)
    for name, _, inverse in KERNELS:
        got = inverse(field, list(values))
        assert got == want, f"{name} diverged from the reference IDFT"


@given(case=transform_case(min_log=4, max_log=6),
       gpus=st.sampled_from([2, 4]))
def test_every_engine_matches_reference(case, gpus):
    field, values = case
    n = len(values)
    want = dft(field, values)
    cluster = SimCluster(field, gpus)
    engines = [SingleGpuEngine(cluster)]
    if n >= 2 * gpus:
        engines.append(PairwiseExchangeEngine(cluster))
    if n >= gpus * gpus:
        engines.append(UniNTTEngine(cluster))
    if n >= 4 * gpus * gpus:
        engines.append(BaselineFourStepEngine(cluster))
    for engine in engines:
        vec = DistributedVector.from_values(cluster, list(values),
                                            engine.input_layout(n))
        got = engine.forward(vec).to_values()
        assert got == want, f"{engine.name} diverged from the reference"
        back = engine.inverse(engine.forward(DistributedVector.from_values(
            cluster, list(values), engine.input_layout(n)))).to_values()
        assert back == list(values), f"{engine.name} roundtrip failed"


@given(seed=st.integers(0, 2**16),
       log_size=st.integers(4, 5),
       field=st.sampled_from(FUZZ_FIELDS),
       direction=st.sampled_from(["forward", "inverse"]),
       requests=st.integers(1, 3),
       batch=st.integers(1, 2),
       batching=st.booleans())
def test_serve_path_matches_reference(seed, log_size, field, direction,
                                      requests, batch, batching):
    """The full scheduler path is as bit-exact as a direct kernel call."""
    workload = [
        ProofRequest(request_id=i, field_name=field.name,
                     log_size=log_size, direction=direction,
                     batch=batch, data_seed=seed)
        for i in range(requests)
    ]
    report = ProofServer(batching=batching).serve(workload)
    assert report.completed == requests
    reference = idft if direction == "inverse" else dft
    for result in report.results:
        for lane, out in zip(result.request.vectors(), result.outputs):
            assert list(out) == reference(field, lane), (
                "serve path diverged from the reference transform")


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_kernels_agree_on_basis_vectors(n):
    """Exhaustive (non-fuzz) agreement on every unit impulse."""
    field = TEST_FIELD_7681
    for position in range(n):
        values = [0] * n
        values[position] = 1
        want = dft(field, values)
        for name, forward, _ in KERNELS:
            assert forward(field, list(values)) == want, (
                f"{name} diverged on e_{position} (n={n})")


# -- big fields through the multi-limb backend --------------------------------

BIG_FIELDS_LAZY = ("BN254-Fr", "BLS12-381-Fr")


@st.composite
def bigfield_case(draw, min_log: int = 1, max_log: int = 5):
    """(field, values) over the 254/255-bit ZKP fields."""
    from repro.field import field_by_name

    field = field_by_name(draw(st.sampled_from(BIG_FIELDS_LAZY)))
    n = 1 << draw(st.integers(min_log, max_log))
    values = draw(st.lists(st.integers(0, field.modulus - 1),
                           min_size=n, max_size=n))
    return field, values


def _require_multilimb():
    from repro.field import numpy_available

    if not numpy_available():
        pytest.skip("multi-limb backend needs numpy")


@given(case=bigfield_case())
def test_multilimb_ntt_matches_python(case):
    """The limb-plane CIOS transform is bit-exact vs the Python path."""
    from repro.field import use_backend

    _require_multilimb()
    field, values = case
    with use_backend("python"):
        want = ntt(field, list(values))
    with use_backend("multilimb"):
        got = ntt(field, list(values))
        back = intt(field, list(got))
    assert got == want, "multilimb forward diverged from PythonBackend"
    assert back == values, "multilimb inverse does not invert forward"


@given(case=bigfield_case(max_log=4))
def test_multilimb_elementwise_matches_python(case):
    """vec_* bulk ops agree under the multi-limb backend."""
    from repro.field import use_backend
    from repro.field.vector import vec_add, vec_inv, vec_mul, vec_scale

    _require_multilimb()
    field, values = case
    other = list(reversed(values))
    scalar = values[0]
    nonzero = [v or 1 for v in values]
    results = {}
    for backend_name in ("python", "multilimb"):
        with use_backend(backend_name):
            results[backend_name] = (
                vec_add(field, values, other),
                vec_mul(field, values, other),
                vec_scale(field, values, scalar),
                vec_inv(field, nonzero),
            )
    assert results["multilimb"] == results["python"]
