"""Tests for the iterative radix-2 kernels."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NTTError
from repro.field import TEST_FIELD_97, TEST_FIELD_7681
from repro.ntt import (
    apply_bit_reversal, dft, intt, ntt, ntt_dif_inplace, ntt_dit_inplace,
    radix2_butterfly_count,
)
from repro.ntt.twiddle import TwiddleCache

F = TEST_FIELD_7681


class TestAgainstReference:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32, 128, 512])
    def test_forward_matches_dft(self, n, rng):
        x = F.random_vector(n, rng)
        assert ntt(F, x) == dft(F, x)

    def test_all_fields(self, ntt_field, rng):
        x = ntt_field.random_vector(64, rng)
        assert ntt(ntt_field, x) == dft(ntt_field, x)

    @pytest.mark.parametrize("n", [1, 2, 16, 256])
    def test_roundtrip(self, n, rng):
        x = F.random_vector(n, rng)
        assert intt(F, ntt(F, x)) == x
        assert ntt(F, intt(F, x)) == x

    def test_input_not_mutated(self, rng):
        x = F.random_vector(16, rng)
        original = list(x)
        ntt(F, x)
        intt(F, x)
        assert x == original


class TestExplicitRoot:
    def test_forward_with_power_root(self, rng):
        """An NTT with root w^2 over half-size slices matches the
        decomposition algebra used by plans."""
        n = 16
        w = F.root_of_unity(2 * n)
        x = F.random_vector(n, rng)
        assert ntt(F, x, root=pow(w, 2, F.modulus)) == dft(
            F, x, root=pow(w, 2, F.modulus))

    def test_inverse_with_root_roundtrip(self, rng):
        n = 32
        w = F.root_of_unity(n)
        x = F.random_vector(n, rng)
        assert intt(F, ntt(F, x, root=w), root=w) == x

    def test_explicit_root_skips_two_adicity_check(self, rng):
        """GF(97) has two-adicity 5; size-64 fails only without a root."""
        with pytest.raises(NTTError, match="two-adicity"):
            ntt(TEST_FIELD_97, [0] * 64)


class TestSchedules:
    def test_dif_output_is_bit_reversed_dft(self, rng):
        n = 16
        x = F.random_vector(n, rng)
        data = list(x)
        cache = TwiddleCache()
        ntt_dif_inplace(F, data, cache.forward(F, n))
        apply_bit_reversal(data, cache)
        assert data == dft(F, x)

    def test_dit_consumes_bit_reversed(self, rng):
        n = 16
        x = F.random_vector(n, rng)
        data = list(x)
        cache = TwiddleCache()
        apply_bit_reversal(data, cache)
        ntt_dit_inplace(F, data, cache.forward(F, n))
        assert data == dft(F, x)

    def test_dif_forward_dit_inverse_needs_no_reversal(self, rng):
        """The overhead-free pairing: DIF out feeds DIT in directly."""
        n = 64
        x = F.random_vector(n, rng)
        data = list(x)
        cache = TwiddleCache()
        ntt_dif_inplace(F, data, cache.forward(F, n))
        ntt_dit_inplace(F, data, cache.inverse(F, n))
        n_inv = F.inv(n)
        assert [v * n_inv % F.modulus for v in data] == x


class TestValidation:
    @pytest.mark.parametrize("n", [0, 3, 6, 12, 100])
    def test_non_power_of_two_rejected(self, n):
        with pytest.raises(NTTError, match="power of two"):
            ntt(F, [0] * n)
        with pytest.raises(NTTError, match="power of two"):
            intt(F, [0] * n)

    def test_size_exceeding_two_adicity(self):
        with pytest.raises(NTTError, match="two-adicity"):
            ntt(F, [0] * 2048)  # GF(7681) caps at 512


class TestButterflyCount:
    def test_values(self):
        assert radix2_butterfly_count(1) == 0
        assert radix2_butterfly_count(2) == 1
        assert radix2_butterfly_count(8) == 12
        assert radix2_butterfly_count(1024) == 512 * 10


@given(st.lists(st.integers(min_value=0, max_value=7680),
                min_size=8, max_size=8))
def test_ntt_intt_roundtrip_property(values):
    assert intt(F, ntt(F, values)) == values


@given(st.lists(st.integers(min_value=0, max_value=7680),
                min_size=16, max_size=16),
       st.lists(st.integers(min_value=0, max_value=7680),
                min_size=16, max_size=16))
def test_transform_is_linear_property(x, y):
    p = F.modulus
    lhs = ntt(F, [(a + b) % p for a, b in zip(x, y)])
    rhs = [(a + b) % p for a, b in zip(ntt(F, x), ntt(F, y))]
    assert lhs == rhs
