"""Property test: static schedules agree with the simulator, everywhere.

For every :func:`ablation_grid` configuration and several cluster
shapes, the plan verifier must pass and the schedule's predicted
per-level byte totals (and field-multiply counts) must equal what the
simulator actually records in its trace.
"""

import random

import pytest

from repro.analysis import check_cost, check_trace, verify_schedule
from repro.field import GOLDILOCKS
from repro.hw import machine_by_name
from repro.multigpu import DistributedVector
from repro.multigpu.pairwise import PairwiseExchangeEngine
from repro.multigpu.schedule import (
    ablation_grid, build_pairwise_schedule, build_unintt_schedule,
)
from repro.multigpu.unintt import UniNTTEngine
from repro.sim.cluster import SimCluster

TOPOLOGIES = ("DGX-1-V100", "DGX-A100", "A100-PCIe-node")
GPU_COUNTS = (2, 4, 8)


def run_engine(engine_class, gpus, n, **kwargs):
    field = GOLDILOCKS
    cluster = SimCluster(field, gpus)
    engine = engine_class(cluster, **kwargs)
    values = field.random_vector(n, random.Random(0))
    vec = DistributedVector.from_values(cluster, values,
                                        engine.input_layout(n))
    engine.forward(vec)
    return cluster


@pytest.mark.parametrize("gpus", GPU_COUNTS)
@pytest.mark.parametrize("label,options",
                         ablation_grid(), ids=lambda v: str(v))
class TestUniNTTScheduleMatchesSimulator:
    N = 256

    def test_schedule_verifies_and_matches_trace(self, label, options,
                                                 gpus):
        cluster = run_engine(UniNTTEngine, gpus, self.N,
                             options=options)
        schedule = build_unintt_schedule(self.N, gpus,
                                         cluster.element_bytes, options)
        assert verify_schedule(schedule) == []
        assert schedule.bytes_by_level() == \
            cluster.trace.bytes_by_level()
        assert schedule.total_field_muls() == cluster.trace.total_field_muls()
        assert check_trace(cluster.trace, schedule=schedule) == []


@pytest.mark.parametrize("gpus", GPU_COUNTS)
class TestPairwiseScheduleMatchesSimulator:
    N = 256

    def test_schedule_verifies_and_matches_trace(self, gpus):
        cluster = run_engine(PairwiseExchangeEngine, gpus, self.N)
        schedule = build_pairwise_schedule(self.N, gpus,
                                           cluster.element_bytes)
        assert verify_schedule(schedule) == []
        assert schedule.bytes_by_level() == \
            cluster.trace.bytes_by_level()
        assert schedule.total_field_muls() == cluster.trace.total_field_muls()
        assert check_trace(cluster.trace, schedule=schedule) == []


@pytest.mark.parametrize("machine_name", TOPOLOGIES)
@pytest.mark.parametrize("gpus", GPU_COUNTS)
class TestCostModelAgrees:
    N = 256

    def test_cost_invariants_hold_on_every_machine(self, machine_name,
                                                   gpus):
        machine = machine_by_name(machine_name).with_gpu_count(gpus)
        schedule = build_unintt_schedule(self.N, gpus, 8)
        assert verify_schedule(schedule, machine=machine) == []
        assert check_cost(machine, GOLDILOCKS, self.N,
                          schedule=schedule) == []
