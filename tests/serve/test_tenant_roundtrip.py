"""tenant_id round-trips: request record, workload JSON, journal, report.

Multi-tenant QoS is only as strong as the plumbing: a tenant id that
falls off during workload serialization, journal replay, or report
aggregation silently collapses every tenant into ``"default"`` and the
weighted-fair guarantees evaporate.  These tests push a non-default
tenant through every serialization boundary and check it comes back.
"""

import json

import pytest

from repro.hw import DGX_A100
from repro.serve import (
    ProofRequest, ProofServer, WorkloadSpec, WriteAheadJournal,
    generate_workload, replay_journal, workload_from_json,
    workload_to_json,
)


def _request(request_id, tenant):
    return ProofRequest(request_id=request_id, field_name="Goldilocks",
                        log_size=4, tenant_id=tenant)


def test_request_record_round_trips_tenant():
    request = _request(7, "prover-a")
    clone = ProofRequest.from_record(request.to_record())
    assert clone == request
    assert clone.tenant_id == "prover-a"


def test_workload_json_round_trips_tenants():
    requests = [_request(0, "prover-a"), _request(1, "batch"),
                _request(2, "default")]
    restored = workload_from_json(workload_to_json(requests))
    assert restored == requests
    assert [r.tenant_id for r in restored] == ["prover-a", "batch",
                                               "default"]


def test_generated_workload_draws_every_tenant_deterministically():
    spec = WorkloadSpec(requests=40, log_sizes=(4,),
                        field_names=("Goldilocks",),
                        tenants=("a", "b", "c"),
                        tenant_weights=(6.0, 3.0, 1.0), seed=11)
    first = generate_workload(spec)
    second = generate_workload(spec)
    assert first == second, "tenant draws must be seed-deterministic"
    counts = {}
    for request in first:
        counts[request.tenant_id] = counts.get(request.tenant_id, 0) + 1
    assert set(counts) == {"a", "b", "c"}
    assert counts["a"] > counts["c"], (
        "a 6:1 weight ratio should dominate over 40 draws")


def test_journal_admit_records_carry_the_tenant():
    journal = WriteAheadJournal()
    server = ProofServer(DGX_A100, journal=journal)
    workload = generate_workload(WorkloadSpec(
        requests=6, log_sizes=(4,), field_names=("Goldilocks",),
        tenants=("prover-a", "batch"), tenant_weights=(1.0, 1.0),
        seed=3))
    server.serve(workload)
    admits = [r for r in journal if r.kind == "admit"]
    assert admits
    tenants = {r.payload["request"]["tenant_id"] for r in admits}
    assert tenants == {r.tenant_id for r in workload}

    # The journal's own JSON round-trip must preserve them, and replay
    # must rebuild requests with the tenant intact.
    restored = WriteAheadJournal.from_json(journal.to_json())
    state = replay_journal(restored)
    for record in restored:
        if record.kind == "admit":
            rebuilt = ProofRequest.from_record(record.payload["request"])
            assert rebuilt.tenant_id in {"prover-a", "batch"}
    assert state is not None


def test_report_breakdown_and_json_key_on_tenants():
    workload = generate_workload(WorkloadSpec(
        requests=10, log_sizes=(4,), field_names=("Goldilocks",),
        tenants=("prover-a", "batch"), tenant_weights=(1.0, 1.0),
        seed=5))
    report = ProofServer(DGX_A100).serve(workload)
    breakdown = report.tenant_breakdown()
    assert set(breakdown) == {r.tenant_id for r in workload}
    assert sum(b["completed"] for b in breakdown.values()) \
        == report.completed

    payload = json.loads(report.to_json())
    assert set(payload["tenants"]) == set(breakdown)
    for tenant, stats in payload["tenants"].items():
        assert stats["completed"] == breakdown[tenant]["completed"]


def test_rejections_are_charged_to_the_offending_tenant():
    # Capacity 1 with instantaneous arrivals: the overflow is rejected
    # and the rejection lands on the submitting tenant's ledger.
    requests = [_request(i, "flooder") for i in range(6)]
    report = ProofServer(DGX_A100, queue_capacity=1).serve(requests)
    assert report.rejected_by_tenant.get("flooder", 0) > 0
    breakdown = report.tenant_breakdown()
    assert breakdown["flooder"]["rejected"] == \
        report.rejected_by_tenant["flooder"]


def test_empty_tenant_is_rejected_at_the_door():
    from repro.errors import ServeError
    with pytest.raises(ServeError, match="tenant"):
        _request(0, "")
