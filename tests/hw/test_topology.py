"""Tests for interconnect topology models."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import Interconnect, nvlink_ring, nvswitch, pcie_host_staged


class TestValidation:
    def test_positive_bandwidth(self):
        with pytest.raises(HardwareModelError, match="bandwidth"):
            Interconnect(kind="x", link_bandwidth=0, latency=0)

    def test_non_negative_latency(self):
        with pytest.raises(HardwareModelError, match="latency"):
            Interconnect(kind="x", link_bandwidth=1e9, latency=-1)

    def test_gpu_count_validation(self):
        fabric = nvswitch()
        with pytest.raises(HardwareModelError, match="gpu_count"):
            fabric.alltoall_bandwidth(0)
        with pytest.raises(HardwareModelError, match="gpu_count"):
            fabric.pairwise_bandwidth(-1)


class TestNVSwitch:
    def test_full_bandwidth_any_scale(self):
        fabric = nvswitch(600e9)
        assert fabric.alltoall_bandwidth(2) == 600e9
        assert fabric.alltoall_bandwidth(8) == 600e9
        assert fabric.pairwise_bandwidth(8) == 600e9

    def test_bounce_factor(self):
        assert nvswitch().bounce_factor() == 1.0


class TestRing:
    def test_alltoall_degrades_with_scale(self):
        fabric = nvlink_ring(150e9)
        bw2 = fabric.alltoall_bandwidth(2)
        bw8 = fabric.alltoall_bandwidth(8)
        bw16 = fabric.alltoall_bandwidth(16)
        assert bw2 == 150e9
        assert bw8 < bw2
        assert bw16 < bw8

    def test_pairwise_unaffected_by_scale(self):
        fabric = nvlink_ring(150e9)
        assert fabric.pairwise_bandwidth(8) == 150e9
        assert fabric.pairwise_bandwidth(16) == 150e9

    def test_pairwise_beats_alltoall(self):
        fabric = nvlink_ring(150e9)
        assert fabric.pairwise_bandwidth(8) > fabric.alltoall_bandwidth(8)


class TestHostStaged:
    def test_bounce_halves_bandwidth(self):
        fabric = pcie_host_staged(32e9)
        assert fabric.bounce_factor() == 2.0
        assert fabric.alltoall_bandwidth(2) == 16e9

    def test_root_complex_contention(self):
        fabric = pcie_host_staged(32e9)
        assert fabric.alltoall_bandwidth(8) == 8e9  # /2 bounce /2 sharing

    def test_much_slower_than_nvswitch(self):
        assert (pcie_host_staged().alltoall_bandwidth(8)
                < nvswitch().alltoall_bandwidth(8) / 10)


class TestDescribe:
    def test_mentions_key_facts(self):
        text = pcie_host_staged().describe()
        assert "pcie-host" in text
        assert "host-staged" in text
        assert "P2P" in nvswitch().describe()
